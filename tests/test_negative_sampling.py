"""Negative sampling and sampled-softmax training.

Covers the shared :class:`repro.data.negative_sampling.NegativeSampler`
(both proposal strategies, the vectorized exclusion draw), the
:func:`repro.autograd.functional.sampled_softmax_loss` autograd node
(exact full-CE equality on the all-classes candidate set, logQ
correction semantics, float64 gradcheck, accidental-hit masking), the
model plumbing (``SlimeConfig(train_num_negatives=...)`` /
``build_baseline`` knobs / ``prediction_loss`` precedence), and the
headline acceptance property: sampled-softmax training reaches the
full-CE HR@10 / NDCG@10 within 0.02 absolute on the synthetic dataset.
"""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor
from repro.baselines import build_baseline
from repro.core import Slime4Rec, SlimeConfig
from repro.data.batching import Batch, BatchIterator
from repro.data.negative_sampling import NegativeSampler
from repro.data.synthetic import load_preset
from repro.train.trainer import TrainConfig, Trainer


# ----------------------------------------------------------------------
# NegativeSampler
# ----------------------------------------------------------------------


class TestNegativeSampler:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="num_items"):
            NegativeSampler(0)
        with pytest.raises(ValueError, match="strategy"):
            NegativeSampler(10, strategy="popularity")

    @pytest.mark.parametrize("strategy", NegativeSampler.STRATEGIES)
    def test_sample_range_and_dtype(self, strategy):
        s = NegativeSampler(37, strategy=strategy, seed=0)
        ids = s.sample(5000)
        assert ids.dtype == np.int64
        assert ids.min() >= 1 and ids.max() <= 37
        # shape-tuple draws too
        assert s.sample((3, 4)).shape == (3, 4)

    @pytest.mark.parametrize("strategy", NegativeSampler.STRATEGIES)
    def test_seeded_determinism(self, strategy):
        a = NegativeSampler(50, strategy=strategy, seed=9)
        b = NegativeSampler(50, strategy=strategy, seed=9)
        np.testing.assert_array_equal(a.sample(64), b.sample(64))
        np.testing.assert_array_equal(
            a.sample_excluding(np.arange(5), 10), b.sample_excluding(np.arange(5), 10)
        )

    @pytest.mark.parametrize("strategy", NegativeSampler.STRATEGIES)
    def test_log_q_is_a_distribution(self, strategy):
        s = NegativeSampler(23, strategy=strategy)
        probs = np.exp(s.log_q(np.arange(1, 24)))
        assert probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert (probs > 0).all()

    @pytest.mark.parametrize("strategy", NegativeSampler.STRATEGIES)
    def test_log_q_rejects_out_of_support_ids(self, strategy):
        s = NegativeSampler(23, strategy=strategy)
        with pytest.raises(ValueError, match="support"):
            s.log_q(np.array([0, 5]))
        with pytest.raises(ValueError, match="support"):
            s.log_q(np.array([24]))

    def test_log_uniform_matches_its_log_q(self):
        """Empirical frequencies track the analytic proposal distribution."""
        s = NegativeSampler(20, strategy="log_uniform", seed=1)
        ids = s.sample(200_000)
        empirical = np.bincount(ids, minlength=21)[1:] / ids.size
        theoretical = np.exp(s.log_q(np.arange(1, 21)))
        np.testing.assert_allclose(empirical, theoretical, atol=3e-3)
        # Zipfian: strictly decreasing in the item id.
        assert (np.diff(theoretical) < 0).all()

    @pytest.mark.parametrize("strategy", NegativeSampler.STRATEGIES)
    def test_sample_excluding_avoids_exclusions(self, strategy):
        s = NegativeSampler(40, strategy=strategy, seed=2)
        exclude = np.array([0, 3, 7, 7, 11, 39])
        negs = s.sample_excluding(exclude, 30)
        assert len(negs) == 30
        assert len(set(negs.tolist())) == 30  # without replacement
        assert not set(negs.tolist()) & set(exclude.tolist())
        assert negs.min() >= 1 and negs.max() <= 40

    def test_sample_excluding_small_catalog_raises(self):
        s = NegativeSampler(50, seed=0)
        with pytest.raises(ValueError, match="eligible"):
            s.sample_excluding(np.arange(1, 20), 40)

    def test_sample_excluding_exhausted_catalog_raises(self):
        s = NegativeSampler(5, seed=0)
        with pytest.raises(ValueError):
            s.sample_excluding(np.arange(1, 6), 1)

    @pytest.mark.parametrize("strategy", NegativeSampler.STRATEGIES)
    def test_sample_excluding_overdraw_path_large_catalog(self, strategy):
        """Above the exact-path threshold, draws come from the O(num)
        over-draw loop: still distinct, exclusion-free, deterministic."""
        s = NegativeSampler(500_000, strategy=strategy, seed=5)
        exclude = np.array([0, 1, 2, 3, 250_000, 499_999])
        negs = s.sample_excluding(exclude, 200)
        assert len(negs) == 200
        assert len(set(negs.tolist())) == 200
        assert not set(negs.tolist()) & set(exclude.tolist())
        assert negs.min() >= 1 and negs.max() <= 500_000
        twin = NegativeSampler(500_000, strategy=strategy, seed=5)
        np.testing.assert_array_equal(negs, twin.sample_excluding(exclude, 200))

    def test_sample_excluding_eligibility_check_is_cheap_on_huge_catalogs(self):
        """The too-small check counts from `exclude`, not from an O(V)
        eligible-set build: a huge catalog with a huge request raises
        immediately when exclusions leave too few items."""
        s = NegativeSampler(1_000_000, seed=0)
        with pytest.raises(ValueError, match="eligible"):
            s.sample_excluding(np.arange(1, 999_999), 1000)


# ----------------------------------------------------------------------
# F.sampled_softmax_loss
# ----------------------------------------------------------------------


def _problem(seed=0, rows=5, dim=4, classes=12):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(rows, dim)), requires_grad=True)
    w = Tensor(rng.normal(size=(classes, dim)), requires_grad=True)
    targets = rng.integers(1, classes, size=rows)
    return x, w, targets


class TestSampledSoftmaxLoss:
    def test_needs_sampler_or_negatives(self):
        x, w, targets = _problem()
        with pytest.raises(ValueError, match="sampler"):
            F.sampled_softmax_loss(x, w, targets)
        with pytest.raises(ValueError, match="num_negatives"):
            F.sampled_softmax_loss(
                x, w, targets, num_negatives=0, sampler=NegativeSampler(11)
            )
        with pytest.raises(ValueError, match="at least one"):
            F.sampled_softmax_loss(x, w, targets, negatives=np.array([], dtype=np.int64))

    def test_rejects_out_of_range_ids(self):
        x, w, targets = _problem()
        with pytest.raises(IndexError, match="negatives"):
            F.sampled_softmax_loss(x, w, targets, negatives=np.array([1, 12]))
        with pytest.raises(IndexError, match="targets"):
            F.sampled_softmax_loss(
                x, w, np.array([1, 2, 3, 4, 99]), negatives=np.array([1, 2])
            )

    def test_logq_correction_needs_a_source(self):
        x, w, targets = _problem()
        with pytest.raises(ValueError, match="logq_correction"):
            F.sampled_softmax_loss(
                x, w, targets, negatives=np.array([1, 2, 3]), logq_correction=True
            )
        # Half a source is no source: neg_log_q without target_log_q.
        with pytest.raises(ValueError, match="target_log_q"):
            F.sampled_softmax_loss(
                x, w, targets, negatives=np.array([1, 2, 3]),
                neg_log_q=np.full(3, -2.0),
            )

    def test_ignore_index_with_log_uniform_correction_is_finite(self):
        """Masked rows' placeholder target (0) lies outside the
        log-uniform support; the correction must skip them, not NaN."""
        x, w, targets = _problem(seed=13)
        targets = targets.copy()
        targets[0] = -1
        s = NegativeSampler(11, strategy="log_uniform", seed=1)
        loss = F.sampled_softmax_loss(
            x, w, targets, num_negatives=6, sampler=s, ignore_index=-1
        )
        loss.backward()
        assert np.isfinite(float(loss.data))
        assert np.isfinite(x.grad).all() and np.isfinite(w.grad).all()
        assert np.abs(x.grad[0]).max() == 0.0  # masked row contributes nothing

    def test_all_classes_candidates_equal_full_cross_entropy(self):
        """With every class as a candidate (duplicated target masked),
        the sampled loss IS the full softmax CE — value and gradients."""
        x, w, targets = _problem()
        x2 = Tensor(x.data.copy(), requires_grad=True)
        w2 = Tensor(w.data.copy(), requires_grad=True)
        sampled = F.sampled_softmax_loss(
            x, w, targets, negatives=np.arange(12), logq_correction=False
        )
        full = F.cross_entropy(F.matmul(x2, F.transpose(w2, (1, 0))), targets)
        sampled.backward()
        full.backward()
        np.testing.assert_allclose(float(sampled.data), float(full.data), atol=1e-12)
        np.testing.assert_allclose(x.grad, x2.grad, atol=1e-12)
        np.testing.assert_allclose(w.grad, w2.grad, atol=1e-12)

    def test_uniform_logq_correction_is_invariant(self):
        """A uniform proposal's correction is a constant logit shift —
        provably cancelled by the softmax."""
        x, w, targets = _problem()
        s = NegativeSampler(11, strategy="uniform", seed=4)
        negs = s.sample(7)
        corrected = F.sampled_softmax_loss(
            x, w, targets, negatives=negs,
            neg_log_q=s.log_q(negs), target_log_q=s.log_q(targets),
        )
        raw = F.sampled_softmax_loss(x, w, targets, negatives=negs, logq_correction=False)
        np.testing.assert_allclose(float(corrected.data), float(raw.data), atol=1e-12)

    def test_gradcheck_float64(self):
        x, w, targets = _problem(seed=3)
        negs = np.concatenate([[int(targets[0])], NegativeSampler(11, seed=5).sample(6)])
        gradcheck(
            lambda a, b: F.sampled_softmax_loss(
                a, b, targets, negatives=negs, logq_correction=False
            ),
            [x, w],
        )

    def test_gradcheck_with_log_uniform_correction(self):
        x, w, targets = _problem(seed=6)
        s = NegativeSampler(11, strategy="log_uniform", seed=7)
        negs = s.sample(8)
        gradcheck(
            lambda a, b: F.sampled_softmax_loss(
                a, b, targets, negatives=negs,
                neg_log_q=s.log_q(negs), target_log_q=s.log_q(targets),
            ),
            [x, w],
        )

    def test_accidental_hit_masking(self):
        """A sampled candidate equal to the row's target never counts as
        a negative: the loss equals dropping it from that row's set."""
        x, w, targets = _problem(seed=8)
        clean = np.setdiff1d(np.arange(1, 12), targets)[:3]
        assert not set(clean.tolist()) & set(targets.tolist())
        with_hit = np.concatenate([clean, [int(targets[0])]])
        masked = F.sampled_softmax_loss(
            x, w, targets, negatives=with_hit, logq_correction=False
        )
        # Row 0's candidate set collapses to `clean`; other rows score
        # the extra candidate normally, so compare row-by-row manually.
        logits = x.data @ w.data.T
        losses = []
        for r, t in enumerate(targets):
            cand = np.concatenate([[t], with_hit[with_hit != t]])
            row = logits[r, cand]
            losses.append(-(row[0] - np.log(np.exp(row - row.max()).sum()) - row.max()))
        np.testing.assert_allclose(float(masked.data), np.mean(losses), atol=1e-12)

    def test_all_negatives_hit_is_finite(self):
        x, w, targets = _problem(seed=9)
        same = np.full(4, int(targets[0]))
        loss = F.sampled_softmax_loss(
            x, w, np.full_like(targets, int(targets[0])), negatives=same,
            logq_correction=False,
        )
        loss.backward()
        assert float(loss.data) == pytest.approx(0.0)
        assert np.isfinite(x.grad).all() and np.isfinite(w.grad).all()

    def test_ignore_index_rows_contribute_nothing(self):
        x, w, targets = _problem(seed=10)
        targets = targets.copy()
        targets[1::2] = -1
        negs = np.array([1, 4, 6])
        loss = F.sampled_softmax_loss(
            x, w, targets, negatives=negs, logq_correction=False, ignore_index=-1
        )
        loss.backward()
        valid_rows = targets != -1
        assert np.abs(x.grad[~valid_rows]).max() == 0.0
        assert np.isfinite(float(loss.data))

    def test_float32_stays_float32(self):
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(9, 4)).astype(np.float32), requires_grad=True)
        s = NegativeSampler(8, seed=1)
        loss = F.sampled_softmax_loss(
            x, w, np.array([1, 2, 3]), num_negatives=4, sampler=s
        )
        loss.backward()
        assert loss.data.dtype == np.float32
        assert x.grad.dtype == np.float32 and w.grad.dtype == np.float32

    def test_sampler_draw_is_consumed_per_call(self):
        """Each call draws a fresh candidate set from the sampler."""
        x, w, targets = _problem(seed=12)
        s = NegativeSampler(11, seed=2)
        a = F.sampled_softmax_loss(x, w, targets, num_negatives=5, sampler=s)
        b = F.sampled_softmax_loss(x, w, targets, num_negatives=5, sampler=s)
        assert float(a.data) != float(b.data)


@pytest.mark.parametrize("dup_hits", [False, True], ids=["clean", "dup-hits"])
@pytest.mark.parametrize("masked", [False, True], ids=["all-rows", "ignore-index"])
@pytest.mark.parametrize("strategy", ["uniform", "log_uniform"])
class TestSampledSoftmaxComboSweep:
    """combo_check-style grid over the loss's interacting options.

    Every cell of sampler strategy x ignore_index x accidental-hit
    duplication passes float64 gradcheck and, at float32, reproduces the
    float64 analytic value/gradients while preserving the input dtype.
    Candidates are drawn once and passed explicitly so both dtypes (and
    the numeric/analytic sides of gradcheck) see the same set; the
    sampler still rides along for the logQ correction, which is how the
    trainer calls it.
    """

    def _case(self, strategy, masked, dup_hits, seed=29):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(12, 4)), requires_grad=True)
        targets = rng.integers(1, 12, size=5)
        sampler = NegativeSampler(11, strategy=strategy, seed=seed + 1)
        negatives = sampler.sample(6)
        if dup_hits:
            # the same accidental hit twice: masking must collapse both
            # copies, and the weight-grad scatter must accumulate the
            # surviving duplicates exactly once each
            negatives = np.concatenate([negatives, [int(targets[0])] * 2])
        kwargs = dict(negatives=negatives, sampler=sampler)
        if masked:
            targets = targets.copy()
            targets[2] = -1
            kwargs["ignore_index"] = -1
        return x, w, targets, kwargs

    def test_gradcheck_float64(self, strategy, masked, dup_hits):
        x, w, targets, kwargs = self._case(strategy, masked, dup_hits)
        gradcheck(
            lambda a, b: F.sampled_softmax_loss(a, b, targets, **kwargs), [x, w]
        )

    def test_float32_matches_float64_and_keeps_dtype(
        self, strategy, masked, dup_hits
    ):
        x64, w64, targets, kwargs = self._case(strategy, masked, dup_hits)
        loss64 = F.sampled_softmax_loss(x64, w64, targets, **kwargs)
        loss64.backward()
        x32 = Tensor(x64.data.astype(np.float32), requires_grad=True)
        w32 = Tensor(w64.data.astype(np.float32), requires_grad=True)
        loss32 = F.sampled_softmax_loss(x32, w32, targets, **kwargs)
        loss32.backward()
        assert loss32.data.dtype == np.float32
        assert x32.grad.dtype == np.float32 and w32.grad.dtype == np.float32
        np.testing.assert_allclose(
            float(loss32.data), float(loss64.data), rtol=1e-5, atol=1e-6
        )
        np.testing.assert_allclose(x32.grad, x64.grad, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(w32.grad, w64.grad, rtol=1e-4, atol=1e-5)


# ----------------------------------------------------------------------
# Model / config / registry plumbing
# ----------------------------------------------------------------------


def _tiny_batch(num_items=30, max_len=12, batch=6, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.integers(1, num_items + 1, size=(batch, max_len))
    inputs[:, :4] = 0
    targets = rng.integers(1, num_items + 1, size=batch)
    return Batch(input_ids=inputs, targets=targets, positive_ids=None)


class TestModelPlumbing:
    def test_config_validates_knobs(self):
        with pytest.raises(ValueError, match="train_num_negatives"):
            SlimeConfig(num_items=10, train_num_negatives=0)
        with pytest.raises(ValueError, match="negative_sampling"):
            SlimeConfig(num_items=10, negative_sampling="nope")

    def test_slime_config_reaches_prediction_loss(self):
        cfg = SlimeConfig(
            num_items=30, max_len=12, hidden_dim=16, cl_weight=0.0,
            train_num_negatives=8, negative_sampling="log_uniform", seed=0,
        )
        model = Slime4Rec(cfg)
        assert model.train_num_negatives == 8
        assert model.negative_sampler().strategy == "log_uniform"
        model.train()
        loss = model.loss(_tiny_batch())
        loss.backward()
        assert np.isfinite(float(loss.data))

    def test_sampled_takes_precedence_over_chunked(self):
        """train_num_negatives wins over ce_chunk_size: the sampled loss
        differs from the full CE; dropping the knob restores it."""
        batch = _tiny_batch()
        cfg = dict(num_items=30, max_len=12, hidden_dim=16, cl_weight=0.0, seed=0)
        both = Slime4Rec(SlimeConfig(**cfg, ce_chunk_size=7, train_num_negatives=4))
        chunked = Slime4Rec(SlimeConfig(**cfg, ce_chunk_size=7))
        full = Slime4Rec(SlimeConfig(**cfg))
        for m in (both, chunked, full):
            m.train()
        assert float(chunked.loss(batch).data) == pytest.approx(
            float(full.loss(batch).data), abs=1e-10
        )
        assert float(both.loss(batch).data) != pytest.approx(
            float(full.loss(batch).data), abs=1e-6
        )

    def test_seeded_model_loss_is_reproducible(self):
        batch = _tiny_batch()
        losses = []
        for _ in range(2):
            cfg = SlimeConfig(
                num_items=30, max_len=12, hidden_dim=16, cl_weight=0.0,
                train_num_negatives=6, seed=3,
            )
            model = Slime4Rec(cfg)
            model.train()
            losses.append(float(model.loss(batch).data))
        assert losses[0] == losses[1]

    @pytest.mark.parametrize("name", ["SASRec", "FMLP-Rec", "GRU4Rec", "DuoRec"])
    def test_registry_applies_knobs_to_every_baseline(self, name, sampling_dataset):
        model = build_baseline(
            name, sampling_dataset, hidden_dim=16, seed=0,
            train_num_negatives=8, negative_sampling="log_uniform",
        )
        assert model.train_num_negatives == 8
        assert model.negative_sampling == "log_uniform"
        model.train()
        it = BatchIterator(sampling_dataset, batch_size=16, with_same_target=True, seed=0)
        loss = model.loss(next(iter(it.epoch())))
        loss.backward()
        assert np.isfinite(float(loss.data))

    def test_registry_rejects_bad_strategy_at_build_time(self, sampling_dataset):
        with pytest.raises(ValueError, match="negative_sampling"):
            build_baseline(
                "SASRec", sampling_dataset, negative_sampling="zipf",
            )

    @pytest.mark.parametrize("knob", ["train_num_negatives", "ce_chunk_size"])
    @pytest.mark.parametrize("bad", [0, -5])
    def test_registry_rejects_bad_counts_at_build_time(
        self, sampling_dataset, knob, bad
    ):
        with pytest.raises(ValueError, match=knob):
            build_baseline("SASRec", sampling_dataset, **{knob: bad})

    @pytest.mark.parametrize("name", ["BERT4Rec", "ContrastVAE", "BPR-MF"])
    def test_registry_rejects_knobs_for_bespoke_loss_models(
        self, name, sampling_dataset
    ):
        """These objectives never read the knobs — accepting them would
        be a silent no-op on exactly the catalogs the knobs exist for."""
        with pytest.raises(ValueError, match="bespoke"):
            build_baseline(name, sampling_dataset, train_num_negatives=64)
        with pytest.raises(ValueError, match="bespoke"):
            build_baseline(name, sampling_dataset, ce_chunk_size=32)
        # Without knobs they still build normally.
        assert build_baseline(name, sampling_dataset, hidden_dim=16) is not None


@pytest.fixture(scope="module")
def sampling_dataset():
    return load_preset("beauty", scale=0.15, max_len=16)


# ----------------------------------------------------------------------
# Acceptance: sampled training tracks full-CE metrics
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def agreement_dataset():
    return load_preset("beauty", scale=0.3, max_len=16)


def _train_and_test(dataset, **knobs):
    model = build_baseline(
        "SLIME4Rec", dataset, hidden_dim=32, seed=0, dtype="float64", **knobs
    )
    trainer = Trainer(
        model, dataset,
        TrainConfig(epochs=5, batch_size=128, patience=0, seed=0),
        with_same_target=True,
    )
    trainer.fit()
    return trainer.test()


class TestSampledTrainingAgreement:
    def test_sampled_softmax_matches_full_ce_metrics(self, agreement_dataset):
        """The headline acceptance: HR@10 / NDCG@10 of sampled-softmax
        training within 0.02 absolute of full-CE training."""
        full = _train_and_test(agreement_dataset)
        sampled = _train_and_test(
            agreement_dataset,
            train_num_negatives=agreement_dataset.num_items // 2,
        )
        assert sampled["HR@10"] == pytest.approx(full["HR@10"], abs=0.02)
        assert sampled["NDCG@10"] == pytest.approx(full["NDCG@10"], abs=0.02)
