"""Tests for attention, GRU and Caser convolution modules."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn import GRU, HorizontalConv, MultiHeadSelfAttention, VerticalConv
from repro.nn.attention import causal_mask


class TestCausalMask:
    def test_upper_triangle_blocked(self):
        mask = causal_mask(4)
        assert mask[0, 1] and mask[2, 3]
        assert not mask[1, 0] and not mask[3, 3]


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        out = attn(Tensor(rng.normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_dim_must_divide_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, rng=rng)

    def test_causality(self, rng):
        """Changing a future item must not change earlier outputs."""
        attn = MultiHeadSelfAttention(8, 2, causal=True, rng=np.random.default_rng(0))
        attn.eval()
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5] += 10.0  # perturb the last position
        pert = attn(Tensor(x2)).data
        assert np.allclose(base[0, :5], pert[0, :5], atol=1e-10)
        assert not np.allclose(base[0, 5], pert[0, 5])

    def test_bidirectional_sees_future(self, rng):
        attn = MultiHeadSelfAttention(8, 2, causal=False, rng=np.random.default_rng(0))
        attn.eval()
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5] += 10.0
        pert = attn(Tensor(x2)).data
        assert not np.allclose(base[0, 0], pert[0, 0])

    def test_key_padding_mask_blocks_positions(self, rng):
        attn = MultiHeadSelfAttention(8, 2, causal=False, rng=np.random.default_rng(0))
        attn.eval()
        x = rng.normal(size=(1, 4, 8))
        pad = np.array([[True, False, False, False]])
        base = attn(Tensor(x), key_padding_mask=pad).data.copy()
        x2 = x.copy()
        x2[0, 0] += 100.0  # padded key changes
        pert = attn(Tensor(x2), key_padding_mask=pad).data
        # Non-padded positions must be unaffected by the padded key.
        assert np.allclose(base[0, 1:], pert[0, 1:], atol=1e-8)

    def test_fully_padded_row_produces_finite_output(self, rng):
        attn = MultiHeadSelfAttention(8, 2, causal=True, rng=np.random.default_rng(0))
        attn.eval()
        x = Tensor(rng.normal(size=(1, 4, 8)))
        pad = np.ones((1, 4), dtype=bool)
        out = attn(x, key_padding_mask=pad)
        assert np.all(np.isfinite(out.data))

    def test_gradients_flow(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.query.weight.grad is not None


class TestGRU:
    def test_output_shape(self, rng):
        gru = GRU(4, 6, rng=rng)
        out = gru(Tensor(rng.normal(size=(3, 5, 4))))
        assert out.shape == (3, 5, 6)

    def test_hidden_evolves_over_time(self, rng):
        gru = GRU(4, 6, rng=rng)
        out = gru(Tensor(rng.normal(size=(1, 5, 4)))).data
        assert not np.allclose(out[0, 0], out[0, 4])

    def test_initial_state_used(self, rng):
        gru = GRU(4, 6, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 4)))
        h0 = Tensor(np.ones((2, 6)))
        out_a = gru(x).data
        out_b = gru(x, h0=h0).data
        assert not np.allclose(out_a, out_b)

    def test_gradients_flow_through_time(self, rng):
        gru = GRU(3, 4, rng=rng)
        x = Tensor(rng.normal(size=(2, 6, 3)), requires_grad=True)
        last = gru(x)
        last.sum().backward()
        # The first timestep's input must receive gradient through the chain.
        assert not np.allclose(x.grad[:, 0], 0.0)
        assert gru.w_h.grad is not None

    def test_causality(self, rng):
        gru = GRU(3, 4, rng=np.random.default_rng(0))
        x = rng.normal(size=(1, 5, 3))
        base = gru(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 4] += 5.0
        pert = gru(Tensor(x2)).data
        assert np.allclose(base[0, :4], pert[0, :4], atol=1e-12)


class TestCaserConvs:
    def test_horizontal_shape(self, rng):
        conv = HorizontalConv(seq_len=8, dim=4, height=3, channels=5, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 8, 4))))
        assert out.shape == (2, 5)

    def test_horizontal_height_validation(self, rng):
        with pytest.raises(ValueError):
            HorizontalConv(seq_len=4, dim=4, height=5, channels=2, rng=rng)

    def test_vertical_shape(self, rng):
        conv = VerticalConv(seq_len=8, channels=3, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 8, 4))))
        assert out.shape == (2, 12)

    def test_horizontal_gradients(self, rng):
        conv = HorizontalConv(seq_len=6, dim=3, height=2, channels=4, rng=rng)
        x = Tensor(rng.normal(size=(2, 6, 3)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None
        assert conv.weight.grad is not None

    def test_vertical_is_linear_in_input(self, rng):
        conv = VerticalConv(seq_len=5, channels=2, rng=np.random.default_rng(0))
        x1 = rng.normal(size=(1, 5, 3))
        x2 = rng.normal(size=(1, 5, 3))
        lhs = conv(Tensor(x1 + x2)).data
        rhs = conv(Tensor(x1)).data + conv(Tensor(x2)).data
        assert np.allclose(lhs, rhs, atol=1e-10)
