"""Tests for Linear, Embedding, LayerNorm, Dropout, activations, init."""

import numpy as np
import pytest

from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor
from repro.nn import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    init,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 6, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 6)

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 6, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_no_bias(self, rng):
        layer = Linear(4, 6, bias=False, rng=rng)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 4))))
        assert np.allclose(zero_out.data, 0.0)

    def test_gradients_flow_to_both_params(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)

        def f(x_, w, b):
            layer.weight.data = w.data
            return layer(x_)

        gradcheck(lambda x_: layer(x_), [x])


class TestEmbedding:
    def test_padding_row_initialized_to_zero(self, rng):
        emb = Embedding(10, 4, padding_idx=0, rng=rng)
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_zero_padding_row_resets(self, rng):
        emb = Embedding(10, 4, padding_idx=0, rng=rng)
        emb.weight.data[0] = 1.0
        emb.zero_padding_row()
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_no_padding_idx_noop(self, rng):
        emb = Embedding(10, 4, rng=rng)
        before = emb.weight.data.copy()
        emb.zero_padding_row()
        assert np.allclose(emb.weight.data, before)


class TestLayerNormModule:
    def test_normalizes(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(4, 8)) * 10 + 3))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)

    def test_affine_params_learnable(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(4, 8))))
        out.sum().backward()
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None


class TestDropoutModule:
    def test_train_mode_zeroes_some(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        assert (out.data == 0).any()

    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        assert layer(x) is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_two_instances_produce_different_masks(self):
        a = Dropout(0.5, rng=np.random.default_rng(1))
        b = Dropout(0.5, rng=np.random.default_rng(2))
        x = Tensor(np.ones((50, 50)))
        assert not np.allclose(a(x).data, b(x).data)


class TestActivations:
    def test_relu_clips_negative(self):
        out = ReLU()(Tensor([-1.0, 2.0]))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_gelu_at_zero(self):
        assert np.isclose(GELU()(Tensor([0.0])).data[0], 0.0)

    def test_gelu_asymptotes(self):
        out = GELU()(Tensor([-10.0, 10.0]))
        assert np.isclose(out.data[0], 0.0, atol=1e-3)
        assert np.isclose(out.data[1], 10.0, atol=1e-3)

    def test_tanh_sigmoid_ranges(self, rng):
        x = Tensor(rng.normal(size=100) * 5)
        assert np.all(np.abs(Tanh()(x).data) <= 1.0)
        s = Sigmoid()(x).data
        assert np.all((s > 0) & (s < 1))


class TestInit:
    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform(rng, (100, 100))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal(rng, (400, 400))
        assert abs(w.std() - np.sqrt(2.0 / 800)) < 1e-3

    def test_normal_std(self, rng):
        w = init.normal(rng, (500, 500), std=0.02)
        assert abs(w.std() - 0.02) < 1e-3

    def test_deterministic_given_seed(self):
        a = init.xavier_uniform(np.random.default_rng(7), (3, 3))
        b = init.xavier_uniform(np.random.default_rng(7), (3, 3))
        assert np.allclose(a, b)
