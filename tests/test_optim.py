"""Tests for Adam, SGD, and gradient clipping."""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.optim import SGD, Adam, clip_grad_norm
from repro.optim.optimizer import Optimizer


def quadratic_loss(param):
    """L = sum((p - 3)^2), minimized at p == 3."""
    diff = F.sub(param, 3.0)
    return F.sum(F.mul(diff, diff))


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_first_step_size_is_lr(self):
        """With bias correction, |first update| == lr regardless of grad scale."""
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([p], lr=0.05)
        p.grad = np.array([1234.0])
        opt.step()
        assert np.isclose(abs(p.data[0]), 0.05, rtol=1e-4)

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.ones(3) * 10.0, requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(3)
        for _ in range(50):
            opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_skips_params_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad set; must not raise or move
        assert np.allclose(p.data, 1.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([])


class ReferenceAdam:
    """Straightforward textbook Adam, allocating freely every step."""

    def __init__(self, shapes, lr, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        self.lr, self.eps, self.weight_decay = lr, eps, weight_decay
        self.beta1, self.beta2 = betas
        self.m = [np.zeros(s) for s in shapes]
        self.v = [np.zeros(s) for s in shapes]
        self.t = 0

    def step(self, params, grads):
        self.t += 1
        out = []
        for i, (p, g) in enumerate(zip(params, grads)):
            if self.weight_decay:
                g = g + self.weight_decay * p
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g
            m_hat = self.m[i] / (1.0 - self.beta1 ** self.t)
            v_hat = self.v[i] / (1.0 - self.beta2 ** self.t)
            out.append(p - self.lr * m_hat / (np.sqrt(v_hat) + self.eps))
        return out


class TestAdamMatchesReference:
    """The in-place/fused rewrite must track the textbook update exactly."""

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_ten_steps_step_for_step(self, weight_decay):
        rng = np.random.default_rng(7)
        shapes = [(4, 3), (5,), ()]
        params = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
        reference = [p.data.copy() for p in params]
        opt = Adam(params, lr=0.05, weight_decay=weight_decay)
        ref_opt = ReferenceAdam(shapes, lr=0.05, weight_decay=weight_decay)
        for _ in range(10):
            grads = [rng.normal(size=s) for s in shapes]
            for p, g in zip(params, grads):
                p.grad = np.asarray(g)
            opt.step()
            reference = ref_opt.step(reference, grads)
            for p, r in zip(params, reference):
                np.testing.assert_allclose(p.data, r, rtol=1e-10, atol=1e-12)

    def test_step_updates_param_buffer_in_place(self):
        p = Tensor(np.ones(4), requires_grad=True)
        buffer = p.data
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(4)
        opt.step()
        assert p.data is buffer  # no reallocation on the hot path

    def test_moment_state_isolated_between_params(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        opt = Adam([a, b], lr=0.1)
        a.grad = np.ones(3)
        opt.step()  # b has no grad: its state and data must not move
        assert np.allclose(b.data, 0.0)
        assert np.allclose(opt._m[1], 0.0) and np.allclose(opt._v[1], 0.0)


class TestSGD:
    def test_step_is_lr_times_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.5)
        p.grad = np.array([2.0])
        opt.step()
        assert np.isclose(p.data[0], 0.0)

    def test_momentum_accumulates(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        opt.step()  # v=1.9, p=-2.9
        assert np.isclose(p.data[0], -2.9)

    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)


class TestClipGradNorm:
    def test_reports_norm(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.ones(4)  # norm 2
        assert np.isclose(clip_grad_norm([p], 100.0), 2.0)

    def test_clips_to_max(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.ones(4) * 10  # norm 20
        clip_grad_norm([p], 1.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([0.1, 0.1])
        before = p.grad.copy()
        clip_grad_norm([p], 5.0)
        assert np.allclose(p.grad, before)

    def test_handles_missing_grads(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        assert clip_grad_norm([p], 1.0) == 0.0


class TestOptimizerBase:
    def test_zero_grad_clears(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.ones(2)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_base_step_not_implemented(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(NotImplementedError):
            Optimizer([p]).step()
