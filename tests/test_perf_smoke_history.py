"""The perf-smoke rolling-median history gate (benchmarks/check_perf_smoke.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_perf_smoke.py"


@pytest.fixture()
def cps(tmp_path):
    spec = importlib.util.spec_from_file_location("check_perf_smoke", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.HISTORY_PATH = tmp_path / "step_time_history.jsonl"
    return module


def _write(module, records):
    lines = [r if isinstance(r, str) else json.dumps(r) for r in records]
    module.HISTORY_PATH.write_text("\n".join(lines), encoding="utf-8")


def _rec(module, step_ms, dtype="float32", **overrides):
    rec = {"dtype": dtype, "step_ms": step_ms, **module.GEOMETRY}
    rec.update(overrides)
    return rec


class TestHistoryMedian:
    def test_no_file_means_no_gate(self, cps):
        assert cps._history_median("float32") == (None, 0)

    def test_needs_min_records(self, cps):
        _write(cps, [_rec(cps, 100), _rec(cps, 110)])
        median, count = cps._history_median("float32")
        assert median is None and count == 2

    def test_median_of_matching_records(self, cps):
        _write(cps, [_rec(cps, 100), _rec(cps, 110), _rec(cps, 120)])
        assert cps._history_median("float32") == (110.0, 3)

    def test_even_window_averages_middle_pair(self, cps):
        _write(cps, [_rec(cps, ms) for ms in (100, 110, 120, 130)])
        assert cps._history_median("float32") == (115.0, 4)

    def test_ignores_other_dtype_geometry_and_garbage(self, cps):
        _write(cps, [
            _rec(cps, 100), _rec(cps, 110), _rec(cps, 120),
            _rec(cps, 5, dtype="float64"),
            _rec(cps, 5, dataset="other"),
            _rec(cps, 5, batch_size=1),
            "not json at all",
        ])
        assert cps._history_median("float32") == (110.0, 3)
        assert cps._history_median("float64") == (None, 1)

    def test_rolling_window_keeps_most_recent(self, cps):
        old = [_rec(cps, 1000.0) for _ in range(5)]
        recent = [_rec(cps, ms) for ms in (100, 105, 110, 115, 120, 125, 130)]
        _write(cps, old + recent)
        median, count = cps._history_median("float32")
        assert count == cps.HISTORY_WINDOW
        assert median == 115.0  # the 1000 ms outliers fell out of the window


class TestVariantKeying:
    """Loss-variant records (sampled CE vs the default full softmax)
    must never mix into one rolling median."""

    def test_default_median_ignores_other_variants(self, cps):
        _write(cps, [
            _rec(cps, 100), _rec(cps, 110), _rec(cps, 120),
            _rec(cps, 5, variant="sampled_ce"),
            _rec(cps, 7, variant="chunked_ce"),
        ])
        assert cps._history_median("float32") == (110.0, 3)

    def test_variant_median_is_per_variant(self, cps):
        _write(cps, [
            _rec(cps, 100), _rec(cps, 110), _rec(cps, 120),
            _rec(cps, 20, variant="sampled_ce"),
            _rec(cps, 30, variant="sampled_ce"),
            _rec(cps, 40, variant="sampled_ce"),
        ])
        assert cps._history_median("float32", variant="sampled_ce") == (30.0, 3)
        assert cps._history_median("float32") == (110.0, 3)

    def test_records_without_variant_field_count_as_default(self, cps):
        """Pre-PR-5 history lines have no variant key: still the baseline."""
        legacy = [_rec(cps, ms) for ms in (100, 110, 120)]
        for rec in legacy:
            assert "variant" not in rec
        tagged = [_rec(cps, 130, variant=cps.DEFAULT_VARIANT)]
        _write(cps, legacy + tagged)
        assert cps._history_median("float32") == (115.0, 4)

    def test_too_few_records_within_a_variant(self, cps):
        _write(cps, [
            _rec(cps, 100), _rec(cps, 110), _rec(cps, 120),
            _rec(cps, 20, variant="sampled_ce"),
        ])
        assert cps._history_median("float32", variant="sampled_ce") == (None, 1)
