"""Tests for k-core filtering, sequence building, LOO split, padding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.preprocess import (
    apply_k_core,
    build_user_sequences,
    leave_one_out_split,
    pad_or_truncate,
)


def interactions_strategy():
    return st.lists(
        st.tuples(
            st.integers(0, 15),  # user
            st.integers(100, 120),  # item
            st.floats(0, 100, allow_nan=False),  # ts
        ),
        min_size=0,
        max_size=200,
    )


class TestKCore:
    def test_keeps_dense_data(self):
        data = [(u, i, float(t)) for u in range(6) for t, i in enumerate(range(5))]
        assert len(apply_k_core(data, k=5)) == len(data)

    def test_drops_sparse_user(self):
        dense = [(u, i, 0.0) for u in range(5) for i in range(5)]
        sparse = [(99, 0, 0.0)]
        out = apply_k_core(dense + sparse, k=5)
        assert all(u != 99 for u, _, _ in out)

    def test_cascading_removal(self):
        # item 7 only kept alive by user 9; dropping user 9 must drop item 7.
        core = [(u, i, 0.0) for u in range(5) for i in range(5)]
        fragile = [(9, 7, 0.0)] + [(9, i, 0.0) for i in range(4)]
        out = apply_k_core(core + fragile, k=5)
        assert all(i != 7 for _, i, _ in out)
        assert all(u != 9 for u, _, _ in out)

    def test_empty_input(self):
        assert apply_k_core([], k=5) == []

    @given(data=interactions_strategy(), k=st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_fixed_point_property(self, data, k):
        """After filtering, every remaining user/item has >= k events."""
        out = apply_k_core(data, k=k)
        from collections import Counter

        users = Counter(u for u, _, _ in out)
        items = Counter(i for _, i, _ in out)
        assert all(c >= k for c in users.values())
        assert all(c >= k for c in items.values())

    @given(data=interactions_strategy())
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, data):
        once = apply_k_core(data, k=3)
        twice = apply_k_core(once, k=3)
        assert once == twice


class TestBuildSequences:
    def test_chronological_order(self):
        data = [(1, 10, 3.0), (1, 11, 1.0), (1, 12, 2.0)]
        seqs, _, item_map = build_user_sequences(data)
        decoded = [
            {v: k for k, v in item_map.items()}[x] for x in seqs[0]
        ]
        assert decoded == [11, 12, 10]

    def test_item_ids_start_at_one(self):
        data = [(1, 500, 0.0), (1, 600, 1.0)]
        seqs, _, item_map = build_user_sequences(data)
        assert min(item_map.values()) == 1
        assert 0 not in seqs[0]

    def test_tie_break_by_input_order(self):
        data = [(1, 10, 0.0), (1, 11, 0.0)]
        seqs, _, item_map = build_user_sequences(data)
        assert seqs[0] == [item_map[10], item_map[11]]

    def test_users_contiguous(self):
        data = [(5, 1, 0.0), (100, 2, 0.0)]
        _, user_map, _ = build_user_sequences(data)
        assert sorted(user_map.values()) == [0, 1]


class TestLeaveOneOut:
    def test_split_structure(self):
        seqs = [[1, 2, 3, 4, 5]]
        train, valid, test = leave_one_out_split(seqs)
        assert train == [[1, 2, 3]]
        assert valid == [([1, 2, 3], 4)]
        assert test == [([1, 2, 3, 4], 5)]

    def test_short_sequences_skipped(self):
        train, valid, test = leave_one_out_split([[1, 2]])
        assert train == [] and valid == [] and test == []

    def test_min_length_three(self):
        train, valid, test = leave_one_out_split([[1, 2, 3]])
        assert train == [[1]]
        assert valid == [([1], 2)]
        assert test == [([1, 2], 3)]

    @given(
        seq=st.lists(st.integers(1, 50), min_size=3, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_leakage_property(self, seq):
        """Test target never appears in the training subsequence slot."""
        train, valid, test = leave_one_out_split([seq])
        (train_seq,) = train
        ((valid_prefix, valid_target),) = valid
        ((test_prefix, test_target),) = test
        assert train_seq == seq[:-2]
        assert valid_prefix == seq[:-2] and valid_target == seq[-2]
        assert test_prefix == seq[:-1] and test_target == seq[-1]


class TestPadOrTruncate:
    def test_left_padding(self):
        out = pad_or_truncate([7, 8], 5)
        assert out.tolist() == [0, 0, 0, 7, 8]

    def test_truncation_keeps_most_recent(self):
        out = pad_or_truncate([1, 2, 3, 4, 5], 3)
        assert out.tolist() == [3, 4, 5]

    def test_exact_length(self):
        out = pad_or_truncate([1, 2, 3], 3)
        assert out.tolist() == [1, 2, 3]

    def test_empty_sequence(self):
        assert pad_or_truncate([], 4).tolist() == [0, 0, 0, 0]

    @given(
        seq=st.lists(st.integers(1, 100), max_size=40),
        max_len=st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_shape_and_suffix_property(self, seq, max_len):
        out = pad_or_truncate(seq, max_len)
        assert out.shape == (max_len,)
        keep = min(len(seq), max_len)
        if keep:
            assert out[max_len - keep:].tolist() == seq[-keep:]
        if keep < max_len:
            assert np.all(out[: max_len - keep] == 0)
