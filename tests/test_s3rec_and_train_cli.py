"""Tests for the S3Rec extension baseline and the training CLI."""

import numpy as np
import pytest

from repro.baselines import S3Rec, build_baseline
from repro.data.batching import BatchIterator
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.train.cli import main


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(num_users=50, num_items=40, seed=10)
    return SequenceDataset(generate_interactions(cfg), max_len=10)


def make_batch(dataset):
    it = BatchIterator(dataset, batch_size=8, seed=0)
    return next(iter(it.epoch()))


class TestS3Rec:
    def test_available_through_registry(self, dataset):
        model = build_baseline("S3Rec", dataset, hidden_dim=16, seed=0)
        assert isinstance(model, S3Rec)

    def test_not_in_table2_lineup(self):
        from repro.baselines import BASELINE_NAMES

        assert "S3Rec" not in BASELINE_NAMES  # paper's Table II is fixed

    def test_cloze_loss_finite_and_backpropagates(self, dataset):
        model = build_baseline("S3Rec", dataset, hidden_dim=16, seed=0)
        loss = model.cloze_loss(make_batch(dataset))
        assert np.isfinite(loss.data)
        loss.backward()
        assert model.item_embedding.weight.grad is not None

    def test_pretrain_phase_switches_to_finetune(self, dataset):
        model = build_baseline(
            "S3Rec", dataset, hidden_dim=16, seed=0, pretrain_steps=2
        )
        model.eval()  # deterministic encoder
        batch = make_batch(dataset)
        model.loss(batch)  # step 1: cloze
        model.loss(batch)  # step 2: cloze
        fine = model.loss(batch)  # step 3: next-item CE
        rec = model.recommendation_loss(batch.input_ids, batch.targets)
        assert np.isclose(float(fine.data), float(rec.data))

    def test_every_row_has_a_masked_position(self, dataset):
        model = build_baseline(
            "S3Rec", dataset, hidden_dim=16, seed=0, mask_prob=0.0
        )
        # mask_prob=0 still masks one position per row (the guarantee).
        loss = model.cloze_loss(make_batch(dataset))
        assert np.isfinite(loss.data) and float(loss.data) > 0


class TestTrainCli:
    def test_end_to_end_with_checkpoint(self, tmp_path, capsys):
        code = main([
            "--model", "FMLP-Rec", "--dataset", "beauty",
            "--scale", "0.1", "--max-len", "8", "--hidden-dim", "16",
            "--epochs", "1", "--patience", "0", "--quiet",
            "--checkpoint", str(tmp_path / "model"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "test:" in out and "checkpoint written" in out
        assert (tmp_path / "model.npz").exists()

    def test_checkpoint_metadata_recorded(self, tmp_path, capsys):
        main([
            "--model", "SLIME4Rec", "--dataset", "beauty",
            "--scale", "0.1", "--max-len", "8", "--hidden-dim", "16",
            "--epochs", "1", "--patience", "0", "--quiet",
            "--checkpoint", str(tmp_path / "slime"),
        ])
        from repro.utils import load_checkpoint

        meta = load_checkpoint(tmp_path / "slime")["metadata"]
        assert meta["model"] == "SLIME4Rec"
        assert "HR@5" in meta["test_metrics"]

    def test_data_file_input(self, tmp_path, capsys):
        lines = []
        for user in range(8):
            for step in range(6):
                lines.append(f"{user} {step % 5} {step}")
        data = tmp_path / "log.txt"
        data.write_text("\n".join(lines))
        code = main([
            "--data-file", str(data), "--max-len", "6",
            "--hidden-dim", "8", "--epochs", "1", "--patience", "0", "--quiet",
        ])
        assert code == 0

    def test_sampled_softmax_flags(self, capsys):
        code = main([
            "--model", "SASRec", "--dataset", "beauty",
            "--scale", "0.1", "--max-len", "8", "--hidden-dim", "16",
            "--epochs", "1", "--patience", "0", "--quiet",
            "--train-num-negatives", "8", "--negative-sampling", "log_uniform",
        ])
        assert code == 0
        assert "test:" in capsys.readouterr().out

    def test_lone_negative_sampling_flag_errors(self, capsys):
        """--negative-sampling without --train-num-negatives must fail
        loudly, not be silently dropped."""
        with pytest.raises(SystemExit):
            main([
                "--model", "SASRec", "--dataset", "beauty", "--scale", "0.1",
                "--max-len", "8", "--epochs", "1", "--quiet",
                "--negative-sampling", "log_uniform",
            ])
        assert "--train-num-negatives" in capsys.readouterr().err

    def test_bespoke_model_with_loss_knob_errors_before_dataset_build(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "--model", "BERT4Rec", "--dataset", "beauty", "--scale", "0.1",
                "--max-len", "8", "--epochs", "1", "--quiet",
                "--train-num-negatives", "8",
            ])
        captured = capsys.readouterr()
        assert "bespoke" in captured.err
        assert "users=" not in captured.out  # no dataset was built first

    def test_ce_chunk_size_flag(self, capsys):
        code = main([
            "--model", "SLIME4Rec", "--dataset", "beauty",
            "--scale", "0.1", "--max-len", "8", "--hidden-dim", "16",
            "--epochs", "1", "--patience", "0", "--quiet",
            "--ce-chunk-size", "16",
        ])
        assert code == 0
        assert "test:" in capsys.readouterr().out

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["--model", "NotAModel"])
