"""Tests for sampled-negative evaluation and the MRR metrics."""

import numpy as np
import pytest

from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.evaluation.metrics import mrr, mrr_at_k
from repro.evaluation.sampled import SampledEvaluator


class TestMrr:
    def test_rank_zero_is_one(self):
        assert mrr([0]) == 1.0

    def test_simple_average(self):
        assert mrr([0, 1]) == pytest.approx((1.0 + 0.5) / 2)

    def test_empty(self):
        assert mrr([]) == 0.0

    def test_mrr_at_k_truncates(self):
        assert mrr_at_k([0, 10], 5) == pytest.approx(0.5)

    def test_mrr_at_k_leq_mrr(self):
        ranks = [0, 3, 7, 20]
        assert mrr_at_k(ranks, 5) <= mrr(ranks)


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(num_users=50, num_items=60, seed=4)
    return SequenceDataset(generate_interactions(cfg), max_len=10)


class _OracleModel:
    def __init__(self, dataset):
        inputs, targets = dataset.eval_arrays("test")
        self._lookup = {i.tobytes(): t for i, t in zip(inputs, targets)}
        self._vocab = dataset.vocab_size

    def eval(self):
        return self

    def predict_scores(self, input_ids):
        scores = np.zeros((input_ids.shape[0], self._vocab))
        for row, inp in enumerate(input_ids):
            scores[row, self._lookup[inp.tobytes()]] = 1.0
        return scores


class _UniformModel:
    def __init__(self, vocab):
        self._vocab = vocab
        self._rng = np.random.default_rng(1)

    def eval(self):
        return self

    def predict_scores(self, input_ids):
        return self._rng.random((input_ids.shape[0], self._vocab))


class TestSampledEvaluator:
    def test_oracle_perfect(self, dataset):
        ev = SampledEvaluator(dataset, ks=(5,), num_negatives=20)
        out = ev.evaluate(_OracleModel(dataset))
        assert out["HR@5"] == 1.0 and out["NDCG@5"] == 1.0

    def test_sampled_overestimates_full_ranking(self, dataset):
        """The Krichene-Rendle bias: sampled metrics >= full metrics."""
        from repro.evaluation import Evaluator

        model = _UniformModel(dataset.vocab_size)
        sampled = SampledEvaluator(dataset, ks=(5,), num_negatives=10, seed=0).evaluate(model)
        full = Evaluator(dataset, ks=(5,)).evaluate(model)
        assert sampled["HR@5"] >= full["HR@5"]

    def test_negatives_exclude_history_and_target(self, dataset):
        ev = SampledEvaluator(dataset, num_negatives=30, seed=0)
        inputs, targets = dataset.eval_arrays("test")
        negs = ev._negatives_for(inputs[0], targets[0])
        assert targets[0] not in negs
        assert 0 not in negs
        assert not set(negs) & set(inputs[0][inputs[0] != 0].tolist())
        assert len(set(negs.tolist())) == 30

    def test_metric_keys(self, dataset):
        ev = SampledEvaluator(dataset, ks=(1, 5), num_negatives=10)
        out = ev.evaluate(_OracleModel(dataset))
        assert set(out) == {"HR@1", "HR@5", "NDCG@1", "NDCG@5"}

    def test_small_catalog_raises_instead_of_hanging(self):
        """num_negatives > eligible items used to spin the rejection
        loop forever; it must now raise a clear ValueError."""
        cfg = SyntheticConfig(num_users=40, num_items=50, seed=6)
        small = SequenceDataset(generate_interactions(cfg), max_len=10)
        assert small.num_items < 100
        ev = SampledEvaluator(small, num_negatives=100)
        with pytest.raises(ValueError, match="eligible"):
            ev.evaluate(_UniformModel(small.vocab_size))

    def test_negatives_deterministic_with_seed(self, dataset):
        inputs, targets = dataset.eval_arrays("test")
        a = SampledEvaluator(dataset, num_negatives=20, seed=3)
        b = SampledEvaluator(dataset, num_negatives=20, seed=3)
        np.testing.assert_array_equal(
            a._negatives_for(inputs[0], targets[0]),
            b._negatives_for(inputs[0], targets[0]),
        )
        c = SampledEvaluator(dataset, num_negatives=20, seed=4)
        assert not np.array_equal(
            a._negatives_for(inputs[1], targets[1]),
            c._negatives_for(inputs[1], targets[1]),
        )

    def test_evaluate_deterministic_with_seed(self, dataset):
        model = _UniformModel(dataset.vocab_size)
        out_a = SampledEvaluator(dataset, ks=(5,), num_negatives=15, seed=9).evaluate(model)
        model_b = _UniformModel(dataset.vocab_size)
        out_b = SampledEvaluator(dataset, ks=(5,), num_negatives=15, seed=9).evaluate(model_b)
        assert out_a == out_b

    def test_shared_sampler_injection(self, dataset):
        """A popularity-weighted NegativeSampler can be swapped in."""
        from repro.data.negative_sampling import NegativeSampler

        sampler = NegativeSampler(dataset.num_items, strategy="log_uniform", seed=0)
        ev = SampledEvaluator(dataset, ks=(5,), num_negatives=10, sampler=sampler)
        assert ev.sampler is sampler
        out = ev.evaluate(_OracleModel(dataset))
        assert out["HR@5"] == 1.0
