"""Serving subsystem correctness (`repro.serving`).

The load-bearing properties:

- **Incremental append == cold re-encode.**  A session built by O(1)
  ring-buffer appends produces the same window — and therefore the
  same scores — as a cold `pad_or_truncate` over the full raw history:
  bitwise in float64, within reassociation tolerance in float32, across
  multi-event sequences that overflow the window.
- **Cached user state is invisible.**  Serving the same user twice
  re-encodes nothing and returns identical results; a parameter update
  is detected (table staleness + per-vector version stamps) and every
  cached artifact is rebuilt before the next response.
- **The fast path is the reference path.**  Micro-batched + blocked
  top-k results equal the naive per-request full-sort scoring arm
  exactly at equal table precision; the float16 table equals scoring
  against an explicitly float16-cast table.
- **Satellite pin**: `predict_scores` / the serving encode run under
  `no_grad` — evaluation scoring builds no autograd graph.
"""

import threading

import numpy as np
import pytest

from repro.autograd.tensor import is_grad_enabled, no_grad
from repro.baselines import build_baseline
from repro.data.preprocess import pad_or_truncate
from repro.data.synthetic import load_preset
from repro.evaluation.topk import full_sort_topk
from repro.optim import Adam
from repro.serving import (
    ItemTable,
    RecommenderService,
    ServingConfig,
    SessionCache,
    UserSession,
)
from repro.serving.cli import main as serve_cli_main

MAX_LEN = 16


@pytest.fixture(scope="module")
def dataset():
    return load_preset("beauty", scale=0.1, max_len=MAX_LEN)


def make_model(dataset, dtype="float32", name="SLIME4Rec", seed=0):
    return build_baseline(name, dataset, hidden_dim=16, seed=seed, dtype=dtype)


# ----------------------------------------------------------------------
# UserSession / SessionCache
# ----------------------------------------------------------------------


class TestUserSession:
    def test_window_matches_pad_or_truncate_across_growth(self):
        """The ring buffer IS Eq. 1: byte-identical to the cold path."""
        rng = np.random.default_rng(0)
        session = UserSession("u", MAX_LEN)
        history = []
        for _ in range(3 * MAX_LEN):  # overflow the window twice
            item = int(rng.integers(1, 500))
            history.append(item)
            session.append(item)
            np.testing.assert_array_equal(
                session.window(), pad_or_truncate(history, MAX_LEN)
            )

    def test_append_invalidates_cached_vector(self):
        session = UserSession("u", 4)
        session.append(3)
        session.store_vec(np.ones(8), version=7)
        assert session.is_fresh(7) and not session.is_fresh(8)
        session.append(5)
        assert not session.is_fresh(7)

    def test_seen_is_unique_window_contents(self):
        session = UserSession("u", 4)
        session.extend([9, 2, 9, 7, 2])  # 9 at the head fell out? no: window keeps last 4
        np.testing.assert_array_equal(session.seen(), [2, 7, 9])
        assert UserSession("v", 4).seen().size == 0

    def test_replace_history_resets(self):
        session = UserSession("u", 4)
        session.extend(range(1, 9))
        session.replace_history([3, 1])
        np.testing.assert_array_equal(session.window(), [0, 0, 3, 1])
        assert session.length == 2

    def test_rejects_padding_and_negative_ids(self):
        session = UserSession("u", 4)
        with pytest.raises(ValueError, match="padding"):
            session.append(0)
        with pytest.raises(ValueError, match="padding"):
            session.append(-3)
        with pytest.raises(ValueError, match="max_len"):
            UserSession("u", 0)


class TestSessionCache:
    def test_lru_eviction_order(self):
        cache = SessionCache(8, capacity=2)
        a, b = cache.get_or_create("a"), cache.get_or_create("b")
        assert cache.get("a") is a  # touch: "b" becomes LRU
        cache.get_or_create("c")
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_unbounded_by_default(self):
        cache = SessionCache(8)
        for i in range(100):
            cache.get_or_create(i)
        assert len(cache) == 100 and cache.evictions == 0

    def test_invalidate_vectors(self):
        cache = SessionCache(8)
        s = cache.get_or_create("a")
        s.store_vec(np.ones(3), version=1)
        cache.invalidate_vectors()
        assert s.user_vec is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SessionCache(8, capacity=0)


# ----------------------------------------------------------------------
# Encoder inference hooks (satellite: eval scoring under no_grad)
# ----------------------------------------------------------------------


class TestEncoderInferenceHooks:
    def test_predict_scores_runs_under_no_grad(self, dataset):
        """The eval scoring path must not build a throwaway graph."""
        model = make_model(dataset)
        observed = []
        original = model.encode_states

        def spy(input_ids):
            observed.append(is_grad_enabled())
            return original(input_ids)

        model.encode_states = spy
        model.eval()
        inputs = dataset.eval_arrays("valid")[0][:4]
        assert is_grad_enabled()  # caller is in grad mode...
        model.predict_scores(inputs)
        model.predict_scores(inputs, context=model.score_context())
        model.encode_users(inputs)
        assert observed == [False, False, False]  # ...the scoring path is not

    def test_predict_scores_values_unchanged_by_no_grad(self, dataset):
        model = make_model(dataset, dtype="float64")
        model.eval()
        inputs = dataset.eval_arrays("valid")[0][:4]
        with no_grad():
            want = model.logits(inputs).data
        np.testing.assert_array_equal(model.predict_scores(inputs), want)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_encode_users_matches_user_representation(self, dataset, dtype):
        model = make_model(dataset, dtype=dtype)
        model.eval()
        inputs = dataset.eval_arrays("valid")[0][:6]
        with no_grad():
            want = model.user_representation(inputs).data
        np.testing.assert_array_equal(model.encode_users(inputs), want)
        # single-window convenience shape and chunked batches
        np.testing.assert_array_equal(model.encode_users(inputs[0]), want[:1])
        np.testing.assert_allclose(
            model.encode_users(inputs, batch_size=4), want, rtol=1e-5, atol=1e-6
        )

    def test_inference_version_ticks_on_optimizer_step(self, dataset):
        model = make_model(dataset)
        before = model.inference_version()
        optimizer = Adam(model.parameters())
        model.train()
        # a zero-grad step still bumps the global parameter version
        optimizer.zero_grad()
        optimizer.step()
        assert model.inference_version() > before


def _tiny_batch(dataset):
    inputs, targets = dataset.train_arrays()
    return inputs[:8], targets[:8]


# ----------------------------------------------------------------------
# ItemTable
# ----------------------------------------------------------------------


class TestItemTable:
    def test_fp16_snapshot_leaves_training_dtype_untouched(self, dataset):
        model = make_model(dataset, dtype="float32")
        table = ItemTable(model, dtype="float16")
        assert table.table.dtype == np.float16
        assert model.item_embedding.weight.dtype == np.float32
        assert table.compute_dtype == np.float32
        np.testing.assert_array_equal(
            table.table, model.score_context().astype(np.float16)
        )

    def test_model_dtype_snapshot(self, dataset):
        model = make_model(dataset, dtype="float64")
        table = ItemTable(model, dtype="model")
        assert table.table.dtype == np.float64
        with pytest.raises(ValueError, match="dtype"):
            ItemTable(model, dtype="int8")

    def test_blocked_scoring_matches_full_gemm(self, dataset):
        model = make_model(dataset, dtype="float32")
        for table_dtype in ("float16", "float32"):
            table = ItemTable(model, dtype=table_dtype, block_size=7)
            users = table.prepare_users(np.random.default_rng(1).standard_normal((5, 16)))
            full = table.score_all(users)
            blocks = np.concatenate(
                [
                    table.score_block(users, start, start + 7)
                    for start in range(0, table.num_columns, 7)
                ],
                axis=1,
            )
            np.testing.assert_allclose(blocks, full, rtol=1e-6, atol=1e-6)

    def test_staleness_detected_after_parameter_update(self, dataset):
        """score_context consumers can detect parameter updates."""
        model = make_model(dataset, dtype="float32")
        table = ItemTable(model, dtype="float16")
        assert not table.is_stale(model)
        optimizer = Adam(model.parameters())
        optimizer.zero_grad()
        optimizer.step()
        assert table.is_stale(model)
        table.refresh(model)
        assert not table.is_stale(model)
        assert table.refreshes == 2


# ----------------------------------------------------------------------
# RecommenderService
# ----------------------------------------------------------------------


def exact_config(**overrides):
    """Blocked path at model precision — isolates machinery from fp16."""
    base = dict(
        k=10, table_dtype="model", topk="blocked", block_size=13, batching=False
    )
    base.update(overrides)
    return ServingConfig(**base)


def cold_reference(model, history, k, exclude_seen=True):
    """The specification: full-history re-encode + full-sort scoring."""
    window = pad_or_truncate(history, model.max_len)
    scores = model.predict_scores(window[None, :], context=model.score_context())
    exclude = [np.unique(window[window > 0])] if exclude_seen else None
    return full_sort_topk(scores, k, exclude=exclude, exclude_padding=True)


class TestServiceCacheCorrectness:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_incremental_append_equals_cold_reencode(self, dataset, dtype):
        """The tentpole pin: sessions built by O(1) appends serve the
        same scores as a cold full re-encode of the raw history —
        bitwise in float64, tight tolerance in float32 — event after
        event, past the window-overflow point."""
        model = make_model(dataset, dtype=dtype)
        service = RecommenderService(model, exact_config())
        rng = np.random.default_rng(4)
        history = []
        for step in range(2 * MAX_LEN):
            item = int(rng.integers(1, dataset.num_items + 1))
            history.append(item)
            service.observe("u", item)
            got = service.recommend("u", k=8)
            # the incremental session state itself is bitwise: same
            # window, same encoded user vector as the cold path
            session = service.sessions.get("u")
            cold_window = pad_or_truncate(history, MAX_LEN)
            np.testing.assert_array_equal(session.window(), cold_window)
            cold_vec = model.encode_users(cold_window)[0]
            if dtype == "float64":
                np.testing.assert_array_equal(session.user_vec, cold_vec)
            else:
                np.testing.assert_allclose(
                    session.user_vec, cold_vec, rtol=1e-6, atol=1e-7
                )
            # served scores match the cold full-sort reference (the
            # blocked scoring GEMM may reassociate: 1-ulp tolerance in
            # float64, accumulated reassociation tolerance in float32)
            want = cold_reference(model, history, 8)
            if dtype == "float64":
                np.testing.assert_array_equal(got.ids, want.ids)
                np.testing.assert_allclose(got.scores, want.scores, rtol=0, atol=1e-14)
            else:
                np.testing.assert_allclose(
                    got.scores, want.scores, rtol=1e-5, atol=1e-6
                )

    def test_second_request_reuses_cached_vector(self, dataset):
        model = make_model(dataset)
        service = RecommenderService(model, exact_config())
        service.observe_history("u", [3, 7, 9])
        first = service.recommend("u")
        second = service.recommend("u")
        np.testing.assert_array_equal(first.ids, second.ids)
        stats = service.stats()
        assert stats["encodes"] == 1 and stats["user_vec_reuses"] == 1

    def test_parameter_update_invalidates_cache_and_table(self, dataset):
        """A trained step must be visible in the very next response."""
        model = make_model(dataset, dtype="float32")
        service = RecommenderService(model, exact_config())
        service.observe_history("u", [3, 7, 9])
        service.recommend("u")
        # mutate parameters through the supported path
        model.train()
        optimizer = Adam(model.parameters(), lr=0.05)
        inputs, targets = _tiny_batch(dataset)
        optimizer.zero_grad()
        model.recommendation_loss(inputs, targets).backward()
        optimizer.step()
        model.eval()
        got = service.recommend("u")
        want = cold_reference(model, [3, 7, 9], service.config.k)
        np.testing.assert_allclose(got.scores, want.scores, rtol=1e-5, atol=1e-6)
        stats = service.stats()
        assert stats["table_refreshes"] == 2  # initial snapshot + post-update
        assert stats["encodes"] == 2  # re-encoded under the new parameters

    def test_seen_items_never_recommended(self, dataset):
        model = make_model(dataset)
        service = RecommenderService(model, exact_config())
        rng = np.random.default_rng(9)
        for user in range(6):
            history = rng.integers(1, dataset.num_items + 1, size=10).tolist()
            service.observe_history(user, history)
            result = service.recommend(user)
            surfaced = set(result.ids[0][result.ids[0] >= 0].tolist())
            assert 0 not in surfaced
            assert not surfaced & set(history[-MAX_LEN:])

    def test_include_seen_config(self, dataset):
        model = make_model(dataset)
        service = RecommenderService(model, exact_config(exclude_seen=False, k=5))
        service.observe_history("u", [3, 3, 3, 3])
        result = service.recommend("u")
        want = cold_reference(model, [3, 3, 3, 3], 5, exclude_seen=False)
        np.testing.assert_array_equal(result.ids, want.ids)

    def test_lru_capacity_evicts_and_recovers(self, dataset):
        model = make_model(dataset)
        service = RecommenderService(model, exact_config(cache_capacity=2))
        for user in ("a", "b", "c"):
            service.observe_history(user, [3, 7])
            service.recommend(user)
        assert service.stats()["session_evictions"] >= 1
        # evicted user comes back cold and is simply re-encoded
        service.observe_history("a", [3, 7])
        result = service.recommend("a")
        want = cold_reference(model, [3, 7], service.config.k)
        np.testing.assert_allclose(result.scores, want.scores, rtol=1e-5, atol=1e-6)


class TestServicePathEquivalence:
    def test_fast_path_equals_naive_path_at_equal_precision(self, dataset):
        """Micro-batched + blocked + cached == per-request full-sort."""
        model = make_model(dataset, dtype="float32")
        fast = RecommenderService(model, exact_config(block_size=7))
        naive = RecommenderService(
            model,
            ServingConfig(
                k=10,
                table_dtype="float32",
                topk="full_sort",
                batching=False,
                reuse_user_state=False,
            ),
        )
        rng = np.random.default_rng(2)
        users = list(range(5))
        for user in users:
            history = rng.integers(1, dataset.num_items + 1, size=12).tolist()
            fast.observe_history(user, history)
            naive.observe_history(user, history)
        got = fast.recommend_many(users)
        for user, fast_result in zip(users, got):
            naive_result = naive.recommend(user)
            np.testing.assert_array_equal(fast_result.ids, naive_result.ids)
            np.testing.assert_allclose(
                fast_result.scores, naive_result.scores, rtol=1e-6, atol=1e-7
            )
        assert naive.stats()["encodes"] == len(users)

    def test_fp16_table_equals_explicit_fp16_reference(self, dataset):
        """The fp16 arm is exact w.r.t. scoring a fp16-cast table in f32."""
        model = make_model(dataset, dtype="float32")
        service = RecommenderService(
            model, ServingConfig(k=6, table_dtype="float16", batching=False, block_size=5)
        )
        service.observe_history("u", [2, 5, 8, 11])
        got = service.recommend("u")
        vec = model.encode_users(service.sessions.get("u").window()[None, :][0])
        table16 = model.score_context().astype(np.float16).astype(np.float32)
        scores = vec.astype(np.float32) @ table16
        want = full_sort_topk(
            scores, 6, exclude=[np.array([2, 5, 8, 11])], exclude_padding=True
        )
        np.testing.assert_array_equal(got.ids, want.ids)
        np.testing.assert_allclose(got.scores, want.scores, rtol=1e-6, atol=1e-7)

    def test_recommend_many_matches_singles(self, dataset):
        model = make_model(dataset, dtype="float64")
        batched = RecommenderService(model, exact_config())
        single = RecommenderService(model, exact_config())
        rng = np.random.default_rng(8)
        users = list(range(7))
        for user in users:
            history = rng.integers(1, dataset.num_items + 1, size=6).tolist()
            batched.observe_history(user, history)
            single.observe_history(user, history)
        for user, got in zip(users, batched.recommend_many(users)):
            want = single.recommend(user)
            np.testing.assert_array_equal(got.ids, want.ids)
            np.testing.assert_allclose(got.scores, want.scores, rtol=0, atol=1e-12)
        assert batched.stats()["batches"] == 1

    @pytest.mark.parametrize("name", ["GRU4Rec", "SASRec"])
    def test_other_architectures_serve_correctly(self, dataset, name):
        model = make_model(dataset, name=name)
        service = RecommenderService(model, exact_config(k=5))
        service.observe_history("u", [4, 9, 13])
        got = service.recommend("u")
        want = cold_reference(model, [4, 9, 13], 5)
        np.testing.assert_allclose(got.scores, want.scores, rtol=1e-5, atol=1e-6)


class TestMicroBatching:
    def test_concurrent_requests_coalesce_and_match_inline(self, dataset):
        model = make_model(dataset)
        inline = RecommenderService(model, exact_config(k=6))
        service = RecommenderService(
            model,
            exact_config(k=6, batching=True, micro_batch=8, max_wait_ms=25.0),
        )
        rng = np.random.default_rng(13)
        users = list(range(8))
        for user in users:
            history = rng.integers(1, dataset.num_items + 1, size=9).tolist()
            inline.observe_history(user, history)
            service.observe_history(user, history)

        results = {}
        errors = []
        barrier = threading.Barrier(len(users))

        def worker(user):
            try:
                barrier.wait(timeout=30)
                results[user] = service.recommend(user)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(u,)) for u in users]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        service.close()
        assert not errors
        for user in users:
            want = inline.recommend(user)
            np.testing.assert_array_equal(results[user].ids, want.ids)
        stats = service.stats()
        assert stats["batched_requests"] == len(users)
        # coalescing happened: fewer batches than requests
        assert stats["batches"] < len(users)

    def test_per_request_k_override_inside_one_batch(self, dataset):
        model = make_model(dataset)
        service = RecommenderService(model, exact_config())
        service.observe_history("u", [3, 7])
        assert service.recommend("u", k=3).ids.shape == (1, 3)
        assert service.recommend("u", k=1).ids.shape == (1, 1)
        with pytest.raises(ValueError, match="k must be"):
            service.recommend("u", k=0)

    def test_closed_service_rejects_new_requests(self, dataset):
        model = make_model(dataset)
        service = RecommenderService(model, exact_config(batching=True))
        service.observe_history("u", [3])
        service.recommend("u")
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.recommend("u")

    def test_cold_user_without_history_is_served(self, dataset):
        model = make_model(dataset)
        service = RecommenderService(model, exact_config(k=4))
        result = service.recommend("brand-new-user")
        assert result.ids.shape == (1, 4)
        assert (result.ids[0] != 0).all()


class TestServingConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="k must be"):
            ServingConfig(k=0)
        with pytest.raises(ValueError, match="topk"):
            ServingConfig(topk="heap")
        with pytest.raises(ValueError, match="micro_batch"):
            ServingConfig(micro_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServingConfig(max_wait_ms=-1)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestServeCli:
    def test_replay_smoke(self, capsys):
        rc = serve_cli_main(
            [
                "--scale", "0.1", "--max-len", "16", "--hidden-dim", "16",
                "--requests", "40", "--concurrency", "2", "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "p50" in out and "QPS" in out

    def test_adhoc_history_mode(self, capsys):
        rc = serve_cli_main(
            [
                "--scale", "0.1", "--max-len", "16", "--hidden-dim", "16",
                "--history", "3 7 9", "--k", "4", "--quiet", "--no-batching",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "history: [3, 7, 9]" in out
        assert out.count("item") == 4
