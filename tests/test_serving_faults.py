"""Serving-path fault tolerance (`repro.serving` resilience layer).

The load-bearing properties, each pinned deterministically via
:mod:`repro.utils.faults` trip points in the production request path:

- **No call outlives its deadline.**  Under any injected fault — a
  killed collector, a stalled encode, a table stuck refreshing — a
  request with ``request_timeout_ms`` set returns a result or a typed
  error within deadline + scheduling slack; nothing blocks unboundedly.
- **Overload is an explicit decision.**  A full queue sheds with
  :class:`~repro.serving.Overloaded`, degrades to the popularity
  fallback, or blocks bounded by the deadline — per ``admission_policy``.
- **Degraded mode is a correct ranking.**  The popularity fallback
  matches the :func:`full_sort_topk` reference on the count matrix
  (same tie rule), masks seen items exactly, and flags every result
  ``degraded=True``.
- **The collector survives its own death.**  A fault mid-batch fails
  only that batch's waiters; past the restart budget the service flips
  to permanent fallback and keeps answering.
- **Refresh never blocks serving.**  ``refresh_table`` builds the new
  snapshot off-lock (double-buffered) and swaps in O(1); a batch is
  scored under exactly one table reference.
"""

import threading
import time

import numpy as np
import pytest

from repro.baselines import build_baseline
from repro.data.synthetic import load_preset
from repro.evaluation.topk import full_sort_topk
from repro.optim import Adam
from repro.serving import (
    DeadlineExceeded,
    Overloaded,
    PopularityRanker,
    RecommenderService,
    ServingConfig,
)
from repro.serving.cli import main as serve_cli_main
from repro.utils.faults import (
    FaultInjector,
    InjectedCrash,
    InjectedIOError,
    inject,
)

MAX_LEN = 16

#: scheduling slack added to deadline bounds — generous for loaded CI
SLACK_MS = 1500.0


@pytest.fixture(scope="module")
def dataset():
    return load_preset("beauty", scale=0.1, max_len=MAX_LEN)


def make_model(dataset, dtype="float32", seed=0):
    return build_baseline("SLIME4Rec", dataset, hidden_dim=16, seed=seed, dtype=dtype)


def bump_params(model) -> None:
    """Mutate parameters through the supported path (ticks the version)."""
    optimizer = Adam(model.parameters())
    optimizer.zero_grad()
    optimizer.step()


def seed_users(service, dataset, n=8):
    for user_id in range(n):
        service.observe_history(user_id, dataset.sequences[user_id][-MAX_LEN:])
    return list(range(n))


def run_concurrent(service, user_ids, repeat=1):
    """Fire ``recommend`` from one thread per user; classify outcomes.

    Returns a list of ``(kind, payload, elapsed_ms)`` where kind is
    "ok" | "degraded" | "error" (typed serving/injected errors) |
    "unexpected" (anything else — the matrix asserts there are none).
    """
    outcomes = []
    lock = threading.Lock()

    def worker(uid):
        for _ in range(repeat):
            start = time.perf_counter()
            try:
                result = service.recommend(uid)
                kind = "degraded" if result.degraded else "ok"
                payload = result
            except (Overloaded, DeadlineExceeded, InjectedCrash, InjectedIOError) as exc:
                kind, payload = "error", exc
            except BaseException as exc:  # noqa: BLE001 — the assertion target
                kind, payload = "unexpected", exc
            elapsed = (time.perf_counter() - start) * 1000.0
            with lock:
                outcomes.append((kind, payload, elapsed))

    threads = [
        threading.Thread(target=worker, args=(uid,), daemon=True)
        for uid in user_ids
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


def assert_valid_result(result, k, seen=None):
    """Shape + masking contract, shared by model-path and degraded results."""
    assert result.ids.shape == (1, k)
    assert result.scores.shape == (1, k)
    live = result.ids[0][result.ids[0] >= 0]
    assert 0 not in live  # padding id never surfaces
    assert len(np.unique(live)) == len(live)
    if seen is not None and len(seen):
        assert not np.isin(live, np.asarray(seen)).any()


# ----------------------------------------------------------------------
# PopularityRanker (degraded-mode ranking)
# ----------------------------------------------------------------------


class TestPopularityRanker:
    def test_validation(self):
        with pytest.raises(ValueError, match="num_items"):
            PopularityRanker(0)
        with pytest.raises(ValueError, match="refresh_every"):
            PopularityRanker(10, refresh_every=0)
        ranker = PopularityRanker(10)
        with pytest.raises(ValueError, match="item ids"):
            ranker.observe(0)
        with pytest.raises(ValueError, match="item ids"):
            ranker.observe(11)
        with pytest.raises(ValueError, match="item ids"):
            ranker.observe_many([3, 12])
        with pytest.raises(ValueError, match="k must be"):
            ranker.topk(0)

    def test_matches_full_sort_reference_on_counts(self):
        """Popularity order == the evaluation stack's tie rule, exactly."""
        rng = np.random.default_rng(3)
        num_items = 50
        ranker = PopularityRanker(num_items, refresh_every=1)
        events = rng.integers(1, num_items + 1, size=400)
        ranker.observe_many(events)
        for k in (1, 5, 17, 50):
            got = ranker.topk(k)
            ref = full_sort_topk(
                ranker.counts[None, :].astype(np.float64), k, exclude_padding=True
            )
            np.testing.assert_array_equal(got.ids, ref.ids)
            assert got.degraded and not ref.degraded

    def test_masking_is_exact_even_with_stale_order(self):
        ranker = PopularityRanker(20, refresh_every=1000)  # order never auto-refreshes
        ranker.observe_many(np.arange(1, 21))
        ranker.topk(5)  # builds the cached order once
        seen = np.array([1, 2, 3, 4, 5])
        result = ranker.topk(5, exclude=seen)
        assert not np.isin(result.ids[0], seen).any()
        ref = full_sort_topk(
            ranker.counts[None, :].astype(np.float64), 5, exclude=[seen]
        )
        np.testing.assert_array_equal(result.ids, ref.ids)

    def test_short_rows_pad_like_the_model_path(self):
        ranker = PopularityRanker(3)
        ranker.observe_many([1, 2, 3])
        result = ranker.topk(5, exclude=np.array([2]))
        assert list(result.ids[0][:2]) != [-1, -1]
        assert list(result.ids[0][2:]) == [-1, -1, -1]
        assert np.isneginf(result.scores[0][2:]).all()

    def test_lazy_rebuild_bounded_by_refresh_every(self):
        ranker = PopularityRanker(10, refresh_every=4)
        ranker.observe_many([1, 2, 3])
        ranker.topk(3)
        assert ranker.rebuilds == 1
        ranker.observe(5)  # 1 event since the build -> cached order reused
        ranker.topk(3)
        assert ranker.rebuilds == 1
        ranker.observe_many([5, 5, 5])  # hits the bound -> invalidated
        ranker.topk(3)
        assert ranker.rebuilds == 2

    def test_scores_are_popularity_counts(self):
        ranker = PopularityRanker(5)
        ranker.observe_many([4, 4, 4, 2, 2, 1])
        result = ranker.topk(3)
        np.testing.assert_array_equal(result.ids, [[4, 2, 1]])
        np.testing.assert_array_equal(result.scores, [[3.0, 2.0, 1.0]])


# ----------------------------------------------------------------------
# ServingConfig resilience-knob validation (satellite)
# ----------------------------------------------------------------------


class TestResilienceConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="request_timeout_ms"):
            ServingConfig(request_timeout_ms=-1)
        with pytest.raises(ValueError, match="queue_timeout_ms"):
            ServingConfig(queue_timeout_ms=-0.5)
        with pytest.raises(ValueError, match="queue_capacity"):
            ServingConfig(micro_batch=8, queue_capacity=4)
        with pytest.raises(ValueError, match="admission_policy"):
            ServingConfig(admission_policy="panic")
        with pytest.raises(ValueError, match="on_error"):
            ServingConfig(on_error="ignore")
        with pytest.raises(ValueError, match="max_collector_restarts"):
            ServingConfig(max_collector_restarts=-1)

    def test_accepts_valid_resilience_config(self):
        config = ServingConfig(
            micro_batch=4,
            queue_capacity=4,
            request_timeout_ms=100.0,
            queue_timeout_ms=50.0,
            admission_policy="shed",
            on_error="raise",
            degrade_on_stale=True,
            max_collector_restarts=0,
        )
        assert config.queue_capacity == 4


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_stalled_encode_times_out_at_the_deadline(self, dataset):
        """A delayed model path surfaces as DeadlineExceeded, not a hang."""
        model = make_model(dataset)
        config = ServingConfig(batching=True, request_timeout_ms=200.0)
        injector = FaultInjector().delay_at("serve.encode", seconds=1.5)
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 1)
            with inject(injector):
                start = time.perf_counter()
                with pytest.raises(DeadlineExceeded):
                    service.recommend(0)
                elapsed_ms = (time.perf_counter() - start) * 1000.0
            assert elapsed_ms < 200.0 + SLACK_MS
            assert service.stats()["deadline_expired"] == 1
            # the stalled batch finishes in the background; the service
            # recovers and serves normally afterwards
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    result = service.recommend(0)
                    break
                except DeadlineExceeded:
                    continue
            assert not result.degraded

    def test_expired_queued_requests_are_drained_not_encoded(self, dataset):
        """The collector fails expired requests instead of serving them."""
        model = make_model(dataset)
        config = ServingConfig(
            batching=True, micro_batch=4, queue_timeout_ms=50.0,
            request_timeout_ms=5000.0,
        )
        # stall the collector *after* it drains the first batch, so the
        # requests sit past their queue deadline before being served
        injector = FaultInjector().delay_at("serve.collect", seconds=0.4)
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 4)
            with inject(injector):
                outcomes = run_concurrent(service, [0, 1, 2, 3])
            assert all(kind == "error" for kind, _, _ in outcomes)
            assert all(
                isinstance(payload, DeadlineExceeded) for _, payload, _ in outcomes
            )
            assert service.stats()["deadline_expired"] == 4
            assert not service.recommend(0).degraded  # recovered

    def test_no_deadline_by_default(self, dataset):
        model = make_model(dataset)
        with RecommenderService(model, ServingConfig(batching=True)) as service:
            seed_users(service, dataset, 1)
            result = service.recommend(0)
            assert not result.degraded
            assert service.stats()["deadline_expired"] == 0


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


def overload_config(policy, request_timeout_ms=3000.0):
    return ServingConfig(
        batching=True,
        micro_batch=2,
        queue_capacity=2,
        admission_policy=policy,
        request_timeout_ms=request_timeout_ms,
    )


class TestAdmissionControl:
    def _flood(self, dataset, policy, request_timeout_ms=3000.0):
        model = make_model(dataset)
        config = overload_config(policy, request_timeout_ms=request_timeout_ms)
        # every batch stalls 300 ms in the collector -> the queue backs up
        injector = FaultInjector().delay_at("serve.collect", seconds=0.3, times=3)
        with RecommenderService(model, config) as service:
            users = seed_users(service, dataset, 8)
            with inject(injector):
                outcomes = run_concurrent(service, users)
            stats = service.stats()
        return outcomes, stats

    def test_shed_policy_raises_overloaded(self, dataset):
        outcomes, stats = self._flood(dataset, "shed")
        assert len(outcomes) == 8
        assert not any(kind == "unexpected" for kind, _, _ in outcomes)
        shed = [p for kind, p, _ in outcomes if isinstance(p, Overloaded)]
        assert shed and stats["sheds"] == len(shed)
        # shed calls return essentially immediately — overload is
        # explicit, not absorbed as latency
        assert all(
            ms < SLACK_MS
            for kind, p, ms in outcomes
            if isinstance(p, Overloaded)
        )
        served = [p for kind, p, _ in outcomes if kind == "ok"]
        assert served  # the queue's worth of requests still got answers

    def test_degrade_policy_serves_popularity_fallback(self, dataset):
        outcomes, stats = self._flood(dataset, "degrade")
        assert not any(kind in ("unexpected", "error") for kind, _, _ in outcomes)
        degraded = [p for kind, p, _ in outcomes if kind == "degraded"]
        assert degraded and stats["sheds"] == len(degraded)
        for result in degraded:
            assert_valid_result(result, 10)

    def test_block_policy_bounded_by_deadline(self, dataset):
        outcomes, _ = self._flood(dataset, "block", request_timeout_ms=500.0)
        assert not any(kind == "unexpected" for kind, _, _ in outcomes)
        # nothing — served, blocked-then-served, or expired — outlives
        # the deadline by more than scheduling slack
        assert all(ms < 500.0 + SLACK_MS for _, _, ms in outcomes)


# ----------------------------------------------------------------------
# Degraded mode
# ----------------------------------------------------------------------


class TestDegradedMode:
    def test_model_error_degrades_by_default(self, dataset):
        model = make_model(dataset)
        config = ServingConfig(batching=False)  # on_error="degrade" default
        injector = FaultInjector().crash_at("serve.encode")
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 1)
            seen = service.sessions.get_or_create(0).seen()
            with inject(injector):
                result = service.recommend(0)
            assert result.degraded
            assert_valid_result(result, 10, seen=seen)
            stats = service.stats()
            assert stats["model_errors"] == 1 and stats["degraded"] == 1
            assert not service.recommend(0).degraded  # fault gone -> model path

    def test_on_error_raise_propagates(self, dataset):
        model = make_model(dataset)
        config = ServingConfig(batching=False, on_error="raise")
        injector = FaultInjector().io_error_at("serve.encode")
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 1)
            with inject(injector):
                with pytest.raises(InjectedIOError):
                    service.recommend(0)
            assert service.stats()["model_errors"] == 1

    def test_degrade_on_stale_serves_fallback_then_recovers(self, dataset):
        model = make_model(dataset)
        config = ServingConfig(batching=False, degrade_on_stale=True)
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 1)
            assert not service.recommend(0).degraded  # fresh table
            bump_params(model)
            old_version = service.table.version
            result = service.recommend(0)  # stale -> degraded, refresh kicked
            assert result.degraded
            deadline = time.monotonic() + 10.0
            while service.table.version == old_version and time.monotonic() < deadline:
                time.sleep(0.01)
            assert service.table.version != old_version
            assert not service.recommend(0).degraded
            assert service.stats()["degraded"] >= 1

    def test_permanent_fallback_and_exit(self, dataset):
        model = make_model(dataset)
        with RecommenderService(model, ServingConfig(batching=True)) as service:
            seed_users(service, dataset, 2)
            service.enter_fallback("ops drill")
            assert service.fallback_active
            # the model path is provably not touched: a crash armed at
            # every encode never fires
            injector = FaultInjector().crash_at("serve.encode", times=1000)
            with inject(injector):
                for _ in range(3):
                    assert service.recommend(0).degraded
            assert injector.counts["serve.encode"] == 0
            assert service.stats()["fallback_reason"] == "ops drill"
            service.exit_fallback()
            assert not service.recommend(1).degraded

    def test_collector_restart_budget_then_permanent_fallback(self, dataset):
        model = make_model(dataset)
        config = ServingConfig(
            batching=True, max_collector_restarts=1, request_timeout_ms=5000.0
        )
        injector = FaultInjector().crash_at("serve.collect", times=5)
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 1)
            with inject(injector):
                # failures 1..2: each batch's waiter gets the crash
                with pytest.raises(InjectedCrash):
                    service.recommend(0)
                with pytest.raises(InjectedCrash):
                    service.recommend(0)
                # budget (1) exceeded -> permanent fallback, still armed
                # crashes can no longer reach anything
                assert service.fallback_active
                result = service.recommend(0)
            assert result.degraded
            stats = service.stats()
            assert stats["collector_failures"] == 2
            assert stats["fallback_active"]
            assert "collector failed" in stats["fallback_reason"]


# ----------------------------------------------------------------------
# Collector-orphan regression (satellite): a fault mid-batch must not
# strand concurrent in-flight requests
# ----------------------------------------------------------------------


class TestCollectorOrphanRegression:
    def test_collector_crash_fails_fast_and_recovers(self, dataset):
        model = make_model(dataset)
        config = ServingConfig(
            batching=True, micro_batch=8, max_wait_ms=20.0,
            request_timeout_ms=2000.0,
        )
        injector = FaultInjector().crash_at("serve.collect")
        with RecommenderService(model, config) as service:
            users = seed_users(service, dataset, 6)
            with inject(injector):
                outcomes = run_concurrent(service, users)
            assert len(outcomes) == 6
            assert not any(kind == "unexpected" for kind, _, _ in outcomes)
            # every in-flight request resolved within its deadline —
            # crashed-batch members fail fast with the crash, any
            # batch formed after the restart is served normally
            assert all(ms < 2000.0 + SLACK_MS for _, _, ms in outcomes)
            crashed = [p for _, p, _ in outcomes if isinstance(p, InjectedCrash)]
            assert crashed  # the injected fault actually hit a batch
            # one failure is within the default restart budget: the
            # collector lives on and the service serves normally
            assert not service.fallback_active
            assert not service.recommend(0).degraded
            assert service.stats()["collector_failures"] == 1


# ----------------------------------------------------------------------
# Chaos matrix (satellite): fault point x action x admission policy
# under concurrent load, deterministic via trip indices
# ----------------------------------------------------------------------

POINTS = ("serve.encode", "serve.score", "serve.collect", "serve.refresh")
ACTIONS = ("crash", "io_error", "delay")
POLICIES = ("block", "shed", "degrade")


def arm(injector, point, action):
    if action == "crash":
        return injector.crash_at(point, times=2)
    if action == "io_error":
        return injector.io_error_at(point, times=2)
    return injector.delay_at(point, seconds=0.05, times=2)


class TestChaosMatrix:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("action", ACTIONS)
    @pytest.mark.parametrize("point", POINTS)
    def test_cell(self, dataset, point, action, policy):
        model = make_model(dataset)
        config = ServingConfig(
            batching=True,
            micro_batch=4,
            max_wait_ms=10.0,
            queue_capacity=8,
            admission_policy=policy,
            request_timeout_ms=1500.0,
        )
        injector = arm(FaultInjector(), point, action)
        with RecommenderService(model, config) as service:
            users = seed_users(service, dataset, 8)
            # dirty the table so the in-batch serve.refresh point trips
            bump_params(model)
            with inject(injector):
                outcomes = run_concurrent(service, users)
            # --- invariants, uniform across all 36 cells ---
            assert len(outcomes) == 8
            unexpected = [p for kind, p, _ in outcomes if kind == "unexpected"]
            assert not unexpected, unexpected
            # no call outlives deadline + slack, whatever the fault did
            assert all(ms < 1500.0 + SLACK_MS for _, _, ms in outcomes)
            # every degraded answer honors the result contract
            for kind, payload, _ in outcomes:
                if kind in ("ok", "degraded"):
                    assert_valid_result(payload, 10)
            # the injector fired deterministically: only at the armed
            # point, at most its multiplicity
            assert 1 <= len(injector.fired) <= 2
            assert all(p == point for p, _ in injector.fired)
            # --- post-fault recovery: injector exhausted or removed ---
            if not service.fallback_active:
                deadline = time.monotonic() + 10.0
                result = None
                while time.monotonic() < deadline:
                    try:
                        result = service.recommend(0)
                        break
                    except (DeadlineExceeded, Overloaded):
                        continue
                assert result is not None and not result.degraded
            else:
                # only a collector kill can burn the restart budget
                assert point == "serve.collect" and action != "delay"
                assert service.recommend(0).degraded


# ----------------------------------------------------------------------
# Double-buffered table refresh (satellite)
# ----------------------------------------------------------------------


class TestDoubleBufferedRefresh:
    def test_refresh_never_blocks_serving(self, dataset):
        """A slow snapshot build must not add latency to the request path."""
        model = make_model(dataset)
        config = ServingConfig(batching=False)
        # the delay fires inside refresh_table's build, off the serving lock
        injector = FaultInjector().delay_at("serve.refresh", seconds=0.6)
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 4)
            for uid in range(4):
                service.recommend(uid)  # warm vectors: requests are pure scoring
            refreshes_before = service.stats()["table_refreshes"]
            version_before = service.table.version
            with inject(injector):
                refresher = threading.Thread(target=service.refresh_table)
                refresher.start()
                time.sleep(0.05)  # let the build enter its stall
                latencies = []
                while refresher.is_alive():
                    start = time.perf_counter()
                    result = service.recommend(int(np.random.default_rng(0).integers(4)))
                    latencies.append((time.perf_counter() - start) * 1000.0)
                    assert not result.degraded
                refresher.join()
            assert latencies, "refresh finished before any request was timed"
            # zero blocked requests: every call during the 600 ms build
            # completed in a fraction of it
            assert max(latencies) < 300.0
            assert service.table.version == version_before  # params unchanged
            assert service.stats()["table_refreshes"] == refreshes_before + 1

    def test_batch_scores_under_one_table_version(self, dataset):
        """A concurrent swap never splits a batch across two snapshots."""
        model = make_model(dataset)
        config = ServingConfig(batching=False)
        injector = FaultInjector().delay_at("serve.score", seconds=0.3)
        with RecommenderService(model, config) as service:
            seed_users(service, dataset, 1)
            reference = service.recommend(0)  # old-parameter answer
            results = []
            with inject(injector):
                def request():
                    results.append(service.recommend(0))

                t = threading.Thread(target=request)
                t.start()
                time.sleep(0.05)  # request is stalled mid-scoring
                bump_params(model)
                service.refresh_table()  # double-buffered swap, new params
                t.join()
            # the stalled batch was served entirely from the pre-swap
            # snapshot: identical to the old-parameter reference
            np.testing.assert_array_equal(results[0].ids, reference.ids)
            np.testing.assert_array_equal(results[0].scores, reference.scores)
            # and the swap took: the next response uses the new snapshot
            assert service.table.is_stale(model) is False

    def test_failed_refresh_keeps_old_snapshot_live(self, dataset):
        model = make_model(dataset)
        injector = FaultInjector().io_error_at("serve.refresh")
        with RecommenderService(model, ServingConfig(batching=False)) as service:
            seed_users(service, dataset, 1)
            reference = service.recommend(0)
            version = service.table.version
            with inject(injector):
                with pytest.raises(InjectedIOError):
                    service.refresh_table()
            assert service.table.version == version
            assert service.stats()["refresh_errors"] == 1
            np.testing.assert_array_equal(service.recommend(0).ids, reference.ids)


# ----------------------------------------------------------------------
# Stats and CLI surface
# ----------------------------------------------------------------------


class TestStatsAndCli:
    def test_resilience_counters_present_and_zero_at_defaults(self, dataset):
        model = make_model(dataset)
        with RecommenderService(model, ServingConfig(batching=False)) as service:
            seed_users(service, dataset, 1)
            service.recommend(0)
            stats = service.stats()
            for key in (
                "sheds", "deadline_expired", "degraded", "model_errors",
                "collector_failures", "refresh_errors",
            ):
                assert stats[key] == 0, key
            assert stats["fallback_active"] is False
            assert stats["fallback_reason"] is None

    def test_cli_resilience_flags_smoke(self, capsys):
        code = serve_cli_main(
            [
                "--scale", "0.05", "--requests", "40", "--concurrency", "2",
                "--quiet", "--request-timeout-ms", "5000",
                "--queue-capacity", "32", "--admission-policy", "shed",
                "--degrade-on-stale",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency p50" in out

    def test_cli_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            serve_cli_main(["--admission-policy", "panic"])
