"""Property tests for the shared blocked top-k (`repro.evaluation.topk`).

The ranking contract all serving/evaluation paths share: descending
score, ties broken by ascending item id, excluded ids never surface,
short rows pad with id -1 / score -inf.  `full_sort_topk` (one stable
full argsort) is the executable specification; `blocked_topk` and the
streaming `TopKAccumulator` are pinned equal to it — including
deliberately tie-heavy matrices where `argpartition`'s arbitrary
boundary resolution would otherwise diverge — across dtypes, k edges
(`k = 1`, `k = V`, `k > V`) and block sizes that do and do not divide
the catalog.
"""

import numpy as np
import pytest

from repro.evaluation.topk import (
    TopKAccumulator,
    blocked_topk,
    full_sort_topk,
)


def reference_order(scores, k, exclude=None, exclude_padding=True):
    """Independent spec: stable argsort of (-score, id) per row."""
    scores = np.asarray(scores, dtype=np.float64).copy()
    if exclude_padding:
        scores[:, 0] = -np.inf
    if exclude is not None:
        for row, ids in enumerate(exclude):
            scores[row, np.asarray(ids, dtype=np.int64)] = -np.inf
    k = min(k, scores.shape[1])
    ids = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    top = np.take_along_axis(scores, ids, axis=1)
    return np.where(np.isneginf(top), -1, ids), top


def assert_same_result(got, want_ids, want_scores):
    np.testing.assert_array_equal(got.ids, want_ids)
    # sentinel slots hold -inf on both sides; compare as float64
    np.testing.assert_array_equal(
        np.asarray(got.scores, dtype=np.float64), np.asarray(want_scores, np.float64)
    )


class TestOrderingContract:
    def test_descending_scores_ties_by_ascending_id(self):
        scores = np.array([[0.0, 2.0, 5.0, 5.0, 1.0, 5.0]])
        result = full_sort_topk(scores, 4, exclude_padding=False)
        np.testing.assert_array_equal(result.ids, [[2, 3, 5, 1]])
        np.testing.assert_array_equal(result.scores, [[5.0, 5.0, 5.0, 2.0]])
        blocked = blocked_topk(scores, 4, block_size=2, exclude_padding=False)
        np.testing.assert_array_equal(blocked.ids, result.ids)

    def test_padding_column_never_surfaces(self):
        scores = np.full((2, 4), 1.0)
        scores[:, 0] = 99.0  # the padding item has the best score
        for result in (full_sort_topk(scores, 2), blocked_topk(scores, 2, block_size=3)):
            assert 0 not in result.ids

    def test_k_one(self):
        scores = np.array([[1.0, 3.0, 3.0, 2.0]])
        result = blocked_topk(scores, 1, block_size=2, exclude_padding=False)
        np.testing.assert_array_equal(result.ids, [[1]])

    def test_k_at_least_catalog_returns_everything_ranked(self):
        scores = np.array([[2.0, 1.0, 3.0]])
        for k in (3, 4, 10):
            result = blocked_topk(scores, k, block_size=2, exclude_padding=False)
            np.testing.assert_array_equal(result.ids, [[2, 0, 1]])
            assert result.ids.shape[1] == 3

    def test_fully_excluded_row_is_all_sentinels(self):
        scores = np.ones((1, 4))
        result = blocked_topk(scores, 3, exclude=[np.arange(4)], exclude_padding=True)
        np.testing.assert_array_equal(result.ids, [[-1, -1, -1]])
        assert np.isneginf(result.scores).all()

    def test_input_never_mutated(self):
        scores = np.arange(12, dtype=np.float64).reshape(3, 4)
        before = scores.copy()
        blocked_topk(scores, 2, block_size=2, exclude=[[1], [2], [3]])
        full_sort_topk(scores, 2, exclude=[[1], [2], [3]])
        np.testing.assert_array_equal(scores, before)


class TestBlockedMatchesFullSort:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("tie_levels", [0, 3], ids=["continuous", "tie-heavy"])
    def test_random_matrices(self, dtype, tie_levels):
        rng = np.random.default_rng(hash((str(dtype), tie_levels)) % 2**32)
        for trial in range(40):
            batch = int(rng.integers(1, 9))
            catalog = int(rng.integers(2, 200))
            k = int(rng.integers(1, catalog + 4))
            block = int(rng.integers(1, catalog + 3))
            if tie_levels:
                scores = rng.integers(0, tie_levels, size=(batch, catalog))
                scores = scores.astype(dtype)
            else:
                scores = rng.standard_normal((batch, catalog)).astype(dtype)
            reference = full_sort_topk(scores, k)
            blocked = blocked_topk(scores, k, block_size=block)
            assert_same_result(blocked, reference.ids, reference.scores)
            want_ids, want_scores = reference_order(scores, k)
            assert_same_result(reference, want_ids, want_scores)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_random_matrices_with_seen_masking(self, dtype):
        rng = np.random.default_rng(11 if dtype is np.float64 else 12)
        for trial in range(30):
            batch = int(rng.integers(1, 7))
            catalog = int(rng.integers(4, 120))
            k = int(rng.integers(1, catalog + 2))
            block = int(rng.integers(1, catalog + 2))
            scores = rng.integers(0, 4, size=(batch, catalog)).astype(dtype)
            exclude = [
                rng.choice(catalog, size=int(rng.integers(0, catalog // 2 + 1)), replace=False)
                for _ in range(batch)
            ]
            reference = full_sort_topk(scores, k, exclude=exclude)
            blocked = blocked_topk(scores, k, block_size=block, exclude=exclude)
            assert_same_result(blocked, reference.ids, reference.scores)
            want_ids, want_scores = reference_order(scores, k, exclude=exclude)
            assert_same_result(reference, want_ids, want_scores)
            # The masking property: a masked id never surfaces.
            for row in range(batch):
                surfaced = set(blocked.ids[row][blocked.ids[row] >= 0].tolist())
                assert 0 not in surfaced
                assert not surfaced & set(np.asarray(exclude[row]).tolist())

    def test_float16_scores(self):
        rng = np.random.default_rng(5)
        scores = rng.standard_normal((4, 60)).astype(np.float16)
        reference = full_sort_topk(scores, 7)
        blocked = blocked_topk(scores, 7, block_size=9)
        np.testing.assert_array_equal(blocked.ids, reference.ids)
        np.testing.assert_array_equal(blocked.scores, reference.scores)

    def test_boundary_tie_straddles_block_edge(self):
        # Equal scores split across two blocks with ids that force the
        # pool's argpartition boundary to land inside the tie group.
        scores = np.array([[1.0, 5.0, 5.0, 5.0, 5.0, 5.0, 2.0, 5.0]])
        reference = full_sort_topk(scores, 3, exclude_padding=False)
        for block in (1, 2, 3, 4, 5):
            blocked = blocked_topk(scores, 3, block_size=block, exclude_padding=False)
            np.testing.assert_array_equal(blocked.ids, reference.ids)
        np.testing.assert_array_equal(reference.ids, [[1, 2, 3]])


class TestAccumulator:
    def test_streaming_blocks_match_matrix_call(self):
        rng = np.random.default_rng(21)
        scores = rng.integers(0, 3, size=(5, 83)).astype(np.float32)
        exclude = [rng.choice(83, size=6, replace=False) for _ in range(5)]
        acc = TopKAccumulator(5, 10)
        for start in range(0, 83, 17):
            block = scores[:, start : start + 17].copy()
            acc.update(start, block, exclude=exclude, writable=True)
        reference = blocked_topk(scores, 10, block_size=29, exclude=exclude)
        result = acc.result()
        np.testing.assert_array_equal(result.ids, reference.ids)
        np.testing.assert_array_equal(result.scores, reference.scores)

    def test_writable_false_copies_before_masking(self):
        scores = np.ones((1, 6))
        acc = TopKAccumulator(1, 2)
        acc.update(0, scores, exclude=[[3]], writable=False)
        np.testing.assert_array_equal(scores, np.ones((1, 6)))

    def test_result_before_update_raises(self):
        with pytest.raises(ValueError, match="update"):
            TopKAccumulator(2, 3).result()

    def test_shape_validation(self):
        acc = TopKAccumulator(2, 3)
        with pytest.raises(ValueError, match="score matrix"):
            acc.update(0, np.ones((3, 4)))
        with pytest.raises(ValueError, match="k must be"):
            TopKAccumulator(2, 0)

    def test_bad_arguments(self):
        with pytest.raises(ValueError, match="block_size"):
            blocked_topk(np.ones((1, 4)), 2, block_size=0)
        with pytest.raises(ValueError, match="k must be"):
            full_sort_topk(np.ones((1, 4)), 0)
        with pytest.raises(ValueError, match="shape"):
            blocked_topk(np.ones(4), 2)
