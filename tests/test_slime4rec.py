"""Tests for the SLIME4Rec model and the filter mixer layer."""

import numpy as np
import pytest

from repro.autograd.spectral import num_frequency_bins
from repro.autograd.tensor import Tensor
from repro.core import FilterMixerLayer, SlideMode, Slime4Rec, SlimeConfig
from repro.data.batching import Batch
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions


def small_config(**overrides):
    defaults = dict(
        num_items=30, max_len=12, hidden_dim=16, num_layers=2,
        alpha=0.4, cl_weight=0.1, seed=0,
    )
    defaults.update(overrides)
    return SlimeConfig(**defaults)


def random_batch(cfg, batch=4, seed=0, with_positive=True):
    rng = np.random.default_rng(seed)
    inputs = rng.integers(1, cfg.num_items + 1, size=(batch, cfg.max_len))
    inputs[:, : cfg.max_len // 2] = 0  # left padding
    targets = rng.integers(1, cfg.num_items + 1, size=batch)
    positives = None
    if with_positive:
        positives = rng.integers(1, cfg.num_items + 1, size=(batch, cfg.max_len))
    return Batch(input_ids=inputs, targets=targets, positive_ids=positives)


class TestConfig:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            small_config(alpha=1.2)

    def test_rejects_no_branches(self):
        with pytest.raises(ValueError):
            small_config(use_dfs=False, use_sfs=False)

    def test_int_slide_mode_coerced(self):
        cfg = small_config(slide_mode=3)
        assert cfg.slide_mode is SlideMode.MODE_3

    def test_mode4_directions(self):
        assert SlideMode.MODE_4.dfs_direction == "high_to_low"
        assert SlideMode.MODE_4.sfs_direction == "high_to_low"


class TestFilterMixerLayer:
    def test_forward_shape(self, rng):
        m = num_frequency_bins(12)
        layer = FilterMixerLayer(12, 8, np.ones(m), np.ones(m), rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 12, 8))))
        assert out.shape == (3, 12, 8)

    def test_requires_at_least_one_branch(self, rng):
        with pytest.raises(ValueError):
            FilterMixerLayer(12, 8, None, None, rng=rng)

    def test_single_branch_ignores_gamma(self, rng):
        m = num_frequency_bins(12)
        layer = FilterMixerLayer(12, 8, np.ones(m), None, gamma=0.9, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 12, 8))))
        assert out.shape == (2, 12, 8)

    def test_gamma_zero_equals_dfs_only_mixing(self, rng):
        """With gamma=0 the SFS branch contributes nothing to the mix."""
        m = num_frequency_bins(12)
        mask = np.ones(m)
        layer = FilterMixerLayer(12, 8, mask, mask, gamma=0.0, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(rng.normal(size=(2, 12, 8)))
        mixed = layer.mix_spectra(x).data
        from repro.autograd.spectral import spectral_filter

        dfs_only = spectral_filter(x, layer.dfs_real, layer.dfs_imag, mask).data
        assert np.allclose(mixed, dfs_only, atol=1e-10)

    def test_mask_bin_count_validated(self, rng):
        with pytest.raises(ValueError):
            FilterMixerLayer(12, 8, np.ones(3), None, rng=rng)

    def test_filter_cache_invalidated_on_payload_replacement(self, rng):
        """Replacing a filter parameter's .data must not serve stale filters."""
        m = num_frequency_bins(12)
        layer = FilterMixerLayer(12, 8, np.ones(m), np.ones(m), rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(rng.normal(size=(2, 12, 8)))
        before = layer.mix_spectra(x).data.copy()  # warms the cache
        layer.dfs_real.data = layer.dfs_real.data + 1.0  # new payload object
        after = layer.mix_spectra(x).data
        assert not np.allclose(before, after)

    def test_filter_cache_manual_invalidation(self, rng):
        """In-place .data edits require invalidate_filter_cache()."""
        m = num_frequency_bins(12)
        layer = FilterMixerLayer(12, 8, np.ones(m), np.ones(m), rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(rng.normal(size=(2, 12, 8)))
        layer.mix_spectra(x)
        layer.dfs_real.data += 1.0
        layer.invalidate_filter_cache()
        from repro.autograd.spectral import combined_filter

        expected = combined_filter(
            layer.dfs_real, layer.dfs_imag, layer.dfs_mask,
            layer.sfs_real, layer.sfs_imag, layer.sfs_mask, layer.gamma,
        )
        assert np.allclose(layer._combined_filter(), expected)

    def test_gradients_reach_all_parameters(self, rng):
        m = num_frequency_bins(12)
        layer = FilterMixerLayer(12, 8, np.ones(m), np.ones(m), rng=rng)
        x = Tensor(rng.normal(size=(2, 12, 8)), requires_grad=True)
        layer(x).sum().backward()
        for name, param in layer.named_parameters():
            assert param.grad is not None, name


class TestSlime4Rec:
    def test_predict_shape_includes_padding_column(self):
        cfg = small_config()
        model = Slime4Rec(cfg)
        batch = random_batch(cfg)
        scores = model.predict_scores(batch.input_ids)
        assert scores.shape == (4, cfg.num_items + 1)

    def test_loss_is_finite_scalar(self):
        cfg = small_config()
        model = Slime4Rec(cfg)
        loss = model.loss(random_batch(cfg))
        assert loss.data.shape == ()
        assert np.isfinite(loss.data)

    def test_loss_without_positive_falls_back_to_rec(self):
        cfg = small_config()
        model = Slime4Rec(cfg)
        model.eval()  # deterministic (no dropout)
        batch = random_batch(cfg, with_positive=False)
        loss = model.loss(batch)
        rec = model.recommendation_loss(batch.input_ids, batch.targets)
        assert np.isclose(float(loss.data), float(rec.data))

    def test_cl_weight_zero_matches_rec_loss(self):
        cfg = small_config(cl_weight=0.0)
        model = Slime4Rec(cfg)
        model.eval()
        batch = random_batch(cfg)
        assert np.isclose(
            float(model.loss(batch).data),
            float(model.recommendation_loss(batch.input_ids, batch.targets).data),
        )

    def test_cl_term_increases_loss(self):
        batch_cfg = small_config(cl_weight=0.0)
        cl_cfg = small_config(cl_weight=1.0)
        plain = Slime4Rec(batch_cfg)
        contrastive = Slime4Rec(cl_cfg)
        contrastive.load_state_dict(plain.state_dict())
        plain.eval(), contrastive.eval()
        batch = random_batch(batch_cfg)
        assert float(contrastive.loss(batch).data) > float(plain.loss(batch).data)

    def test_training_reduces_loss(self):
        from repro.optim import Adam

        cfg = small_config(cl_weight=0.0, embed_dropout=0.0, hidden_dropout=0.0)
        model = Slime4Rec(cfg)
        batch = random_batch(cfg, batch=16)
        opt = Adam(model.parameters(), lr=1e-2)
        first = None
        for step in range(30):
            opt.zero_grad()
            loss = model.loss(batch)
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < first * 0.8

    def test_ablation_variants_construct(self):
        for kwargs in (dict(use_dfs=False), dict(use_sfs=False), dict(cl_weight=0.0)):
            model = Slime4Rec(small_config(**kwargs))
            scores = model.predict_scores(random_batch(model.config).input_ids)
            assert np.all(np.isfinite(scores))

    def test_filter_amplitudes_structure(self):
        cfg = small_config(num_layers=3)
        model = Slime4Rec(cfg)
        amps = model.filter_amplitudes()
        m = num_frequency_bins(cfg.max_len)
        assert len(amps["dfs"]) == 3 and len(amps["sfs"]) == 3
        assert amps["dfs"][0].shape == (m, cfg.hidden_dim)

    def test_filter_amplitudes_respect_masks(self):
        cfg = small_config(num_layers=4, alpha=0.2)
        model = Slime4Rec(cfg)
        amps = model.filter_amplitudes()
        for layer, amp in zip(model.layers, amps["dfs"]):
            outside = layer.dfs_mask == 0
            assert np.allclose(amp[outside], 0.0)

    def test_noise_injection_changes_scores(self):
        quiet = Slime4Rec(small_config(noise_eps=0.0))
        noisy = Slime4Rec(small_config(noise_eps=0.5))
        noisy.load_state_dict(quiet.state_dict())
        quiet.eval(), noisy.eval()
        inputs = random_batch(quiet.config).input_ids
        assert not np.allclose(quiet.predict_scores(inputs), noisy.predict_scores(inputs))

    def test_deterministic_construction(self):
        a = Slime4Rec(small_config(seed=42))
        b = Slime4Rec(small_config(seed=42))
        sa, sb = a.state_dict(), b.state_dict()
        assert all(np.allclose(sa[k], sb[k]) for k in sa)

    def test_alpha_one_single_layer_masks_match_fmlp(self):
        """alpha=1 -> every DFS window is the full band (FMLP equivalence)."""
        model = Slime4Rec(small_config(alpha=1.0, num_layers=2))
        for layer in model.layers:
            assert np.all(layer.dfs_mask == 1.0)

    def test_rejects_wrong_sequence_length(self):
        cfg = small_config()
        model = Slime4Rec(cfg)
        with pytest.raises(ValueError):
            model.predict_scores(np.zeros((2, cfg.max_len + 1), dtype=np.int64))
