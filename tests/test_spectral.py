"""Tests for the fused spectral-filter op — the heart of SLIME4Rec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import functional as F
from repro.autograd.gradcheck import gradcheck
from repro.autograd.spectral import (
    combined_filter,
    dft_matrices,
    num_frequency_bins,
    spectral_filter,
    spectral_filter_mixed,
    spectral_filter_reference,
)
from repro.autograd.tensor import Tensor


def make_inputs(rng, batch=2, n=8, d=3):
    m = num_frequency_bins(n)
    x = Tensor(rng.normal(size=(batch, n, d)), requires_grad=True)
    wr = Tensor(rng.normal(size=(m, d)), requires_grad=True)
    wi = Tensor(rng.normal(size=(m, d)), requires_grad=True)
    return x, wr, wi, m


class TestBinCount:
    def test_even(self):
        assert num_frequency_bins(8) == 5

    def test_odd(self):
        assert num_frequency_bins(7) == 4

    def test_matches_paper_formula_for_even_n(self):
        # Paper: M = ceil(N/2) + 1; for even N this equals N//2 + 1.
        for n in (2, 4, 8, 50, 100):
            assert num_frequency_bins(n) == n // 2 + 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            num_frequency_bins(0)


class TestForward:
    def test_identity_filter_reconstructs_input(self, rng):
        """W = 1 + 0i on all bins must be a perfect round trip."""
        x, _, _, m = make_inputs(rng)
        ones = Tensor(np.ones((m, 3)))
        zeros = Tensor(np.zeros((m, 3)))
        out = spectral_filter(x, ones, zeros, np.ones(m))
        assert np.allclose(out.data, x.data, atol=1e-12)

    def test_zero_mask_kills_everything(self, rng):
        x, wr, wi, m = make_inputs(rng)
        out = spectral_filter(x, wr, wi, np.zeros(m))
        assert np.allclose(out.data, 0.0)

    def test_dc_only_mask_gives_constant_over_time(self, rng):
        x, wr, wi, m = make_inputs(rng)
        mask = np.zeros(m)
        mask[0] = 1.0
        out = spectral_filter(x, wr, wi, mask)
        # Only the DC bin survives -> output constant along time axis.
        assert np.allclose(out.data, out.data[:, :1, :], atol=1e-10)

    def test_matches_reference_even_n(self, rng):
        x, wr, wi, m = make_inputs(rng, n=10)
        mask = (rng.random(m) > 0.5).astype(float)
        fast = spectral_filter(x, wr, wi, mask)
        ref = spectral_filter_reference(x, wr, wi, mask)
        assert np.allclose(fast.data, ref.data, atol=1e-10)

    def test_matches_reference_odd_n(self, rng):
        x, wr, wi, m = make_inputs(rng, n=9)
        mask = np.ones(m)
        fast = spectral_filter(x, wr, wi, mask)
        ref = spectral_filter_reference(x, wr, wi, mask)
        assert np.allclose(fast.data, ref.data, atol=1e-10)

    def test_output_is_real_dtype(self, rng):
        x, wr, wi, m = make_inputs(rng)
        out = spectral_filter(x, wr, wi, np.ones(m))
        assert out.data.dtype.kind == "f"

    def test_linearity_in_input(self, rng):
        x1, wr, wi, m = make_inputs(rng)
        x2 = Tensor(rng.normal(size=x1.shape))
        mask = np.ones(m)
        lhs = spectral_filter(Tensor(x1.data + 2.0 * x2.data), wr, wi, mask)
        a = spectral_filter(Tensor(x1.data), wr, wi, mask)
        b = spectral_filter(x2, wr, wi, mask)
        assert np.allclose(lhs.data, a.data + 2.0 * b.data, atol=1e-10)

    def test_equals_circular_convolution(self, rng):
        """The op must equal a time-domain circular conv with the kernel."""
        x, wr, wi, m = make_inputs(rng, batch=1, n=8, d=1)
        mask = np.ones(m)
        out = spectral_filter(x, wr, wi, mask)
        filt = (wr.data + 1j * wi.data)[:, 0]
        kernel = np.fft.irfft(filt, n=8)
        expected = np.real(np.fft.ifft(np.fft.fft(x.data[0, :, 0]) * np.fft.fft(kernel)))
        assert np.allclose(out.data[0, :, 0], expected, atol=1e-10)

    def test_shape_validation(self, rng):
        x, wr, wi, m = make_inputs(rng)
        with pytest.raises(ValueError):
            spectral_filter(Tensor(np.zeros((2, 8))), wr, wi, np.ones(m))
        with pytest.raises(ValueError):
            spectral_filter(x, Tensor(np.zeros((m + 1, 3))), wi, np.ones(m))
        with pytest.raises(ValueError):
            spectral_filter(x, wr, wi, np.ones(m + 2))


class TestGradients:
    def test_gradcheck_banded_mask_even(self, rng):
        x, wr, wi, m = make_inputs(rng, n=8)
        mask = np.zeros(m)
        mask[1:4] = 1.0
        gradcheck(lambda a, b, c: spectral_filter(a, b, c, mask), [x, wr, wi])

    def test_gradcheck_full_mask_odd(self, rng):
        x, wr, wi, m = make_inputs(rng, n=7)
        gradcheck(lambda a, b, c: spectral_filter(a, b, c, np.ones(m)), [x, wr, wi])

    def test_fused_and_reference_gradients_agree(self, rng):
        mask = None
        x, wr, wi, m = make_inputs(rng, n=10)
        mask = np.zeros(m)
        mask[2:5] = 1.0

        out = spectral_filter(x, wr, wi, mask)
        out.backward(np.ones_like(out.data))
        fused = (x.grad.copy(), wr.grad.copy(), wi.grad.copy())

        x.zero_grad(), wr.zero_grad(), wi.zero_grad()
        ref = spectral_filter_reference(x, wr, wi, mask)
        ref.backward(np.ones_like(ref.data))

        assert np.allclose(fused[0], x.grad, atol=1e-10)
        assert np.allclose(fused[1], wr.grad, atol=1e-10)
        assert np.allclose(fused[2], wi.grad, atol=1e-10)

    def test_masked_bins_receive_no_filter_gradient(self, rng):
        x, wr, wi, m = make_inputs(rng)
        mask = np.zeros(m)
        mask[2] = 1.0
        out = spectral_filter(x, wr, wi, mask)
        out.backward(np.ones_like(out.data))
        outside = np.ones(m, dtype=bool)
        outside[2] = False
        assert np.allclose(wr.grad[outside], 0.0)
        assert np.allclose(wi.grad[outside], 0.0)

    def test_dc_imaginary_gradient_is_zero(self, rng):
        x, wr, wi, m = make_inputs(rng, n=8)
        out = spectral_filter(x, wr, wi, np.ones(m))
        out.backward(np.ones_like(out.data))
        assert np.allclose(wi.grad[0], 0.0)
        assert np.allclose(wi.grad[-1], 0.0)  # Nyquist for even N

    @given(
        n=st.integers(4, 12),
        d=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_fused_matches_reference_property(self, n, d, seed):
        r = np.random.default_rng(seed)
        m = num_frequency_bins(n)
        x = Tensor(r.normal(size=(2, n, d)), requires_grad=True)
        wr = Tensor(r.normal(size=(m, d)), requires_grad=True)
        wi = Tensor(r.normal(size=(m, d)), requires_grad=True)
        mask = (r.random(m) > 0.3).astype(float)
        fast = spectral_filter(x, wr, wi, mask)
        ref = spectral_filter_reference(x, wr, wi, mask)
        assert np.allclose(fast.data, ref.data, atol=1e-9)


def make_mixed_inputs(rng, batch=2, n=8, d=3):
    """x plus independent DFS/SFS filter pairs for the fused op."""
    m = num_frequency_bins(n)
    x = Tensor(rng.normal(size=(batch, n, d)), requires_grad=True)
    params = [Tensor(rng.normal(size=(m, d)), requires_grad=True) for _ in range(4)]
    return (x, *params, m)


def mask_pair(m, kind, rng):
    """DFS/SFS window pairs covering the interesting overlap regimes."""
    if kind == "disjoint":
        dfs, sfs = np.zeros(m), np.zeros(m)
        dfs[: m // 2] = 1.0
        sfs[m // 2 :] = 1.0
    elif kind == "overlapping":
        dfs = (rng.random(m) > 0.3).astype(float)
        sfs = (rng.random(m) > 0.3).astype(float)
        sfs[m // 3] = dfs[m // 3] = 1.0  # force at least one shared bin
    else:  # full
        dfs, sfs = np.ones(m), np.ones(m)
    return dfs, sfs


def mixed_reference(x, dr, di, dfs_mask, sr, si, sfs_mask, gamma):
    """(1-γ)·ref_D + γ·ref_S through the O(N²) DFT-matrix reference."""
    a = spectral_filter_reference(x, dr, di, dfs_mask)
    b = spectral_filter_reference(x, sr, si, sfs_mask)
    return F.add(F.mul(a, 1.0 - gamma), F.mul(b, gamma))


class TestMixedForward:
    @pytest.mark.parametrize("n", [8, 9])
    @pytest.mark.parametrize("gamma", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("kind", ["disjoint", "overlapping"])
    def test_matches_reference(self, rng, n, gamma, kind):
        x, dr, di, sr, si, m = make_mixed_inputs(rng, n=n)
        dfs_mask, sfs_mask = mask_pair(m, kind, rng)
        fused = spectral_filter_mixed(x, dr, di, dfs_mask, sr, si, sfs_mask, gamma)
        ref = mixed_reference(x, dr, di, dfs_mask, sr, si, sfs_mask, gamma)
        assert np.allclose(fused.data, ref.data, atol=1e-10)

    def test_matches_two_spectral_filter_calls(self, rng):
        x, dr, di, sr, si, m = make_mixed_inputs(rng, n=10)
        dfs_mask, sfs_mask = mask_pair(m, "overlapping", rng)
        fused = spectral_filter_mixed(x, dr, di, dfs_mask, sr, si, sfs_mask, 0.3)
        a = spectral_filter(x, dr, di, dfs_mask)
        b = spectral_filter(x, sr, si, sfs_mask)
        assert np.allclose(fused.data, 0.7 * a.data + 0.3 * b.data, atol=1e-12)

    def test_precombined_filter_injection(self, rng):
        """Passing a cached combined_filter result must not change values."""
        x, dr, di, sr, si, m = make_mixed_inputs(rng)
        dfs_mask, sfs_mask = mask_pair(m, "overlapping", rng)
        filt = combined_filter(dr, di, dfs_mask, sr, si, sfs_mask, 0.5)
        with_cache = spectral_filter_mixed(
            x, dr, di, dfs_mask, sr, si, sfs_mask, 0.5, filt=filt
        )
        without = spectral_filter_mixed(x, dr, di, dfs_mask, sr, si, sfs_mask, 0.5)
        assert np.array_equal(with_cache.data, without.data)

    def test_shape_validation(self, rng):
        x, dr, di, sr, si, m = make_mixed_inputs(rng)
        with pytest.raises(ValueError):
            spectral_filter_mixed(
                Tensor(np.zeros((2, 8))), dr, di, np.ones(m), sr, si, np.ones(m), 0.5
            )
        with pytest.raises(ValueError):
            spectral_filter_mixed(
                x, dr, di, np.ones(m + 1), sr, si, np.ones(m), 0.5
            )
        with pytest.raises(ValueError):
            spectral_filter_mixed(
                x, Tensor(np.zeros((m + 1, 3))), di, np.ones(m), sr, si, np.ones(m), 0.5
            )


class TestMixedGradients:
    @pytest.mark.parametrize("n", [8, 9])
    @pytest.mark.parametrize("gamma", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("kind", ["disjoint", "overlapping"])
    def test_gradcheck_finite_differences(self, rng, n, gamma, kind):
        x, dr, di, sr, si, m = make_mixed_inputs(rng, n=n)
        dfs_mask, sfs_mask = mask_pair(m, kind, rng)
        gradcheck(
            lambda a, b, c, d, e: spectral_filter_mixed(
                a, b, c, dfs_mask, d, e, sfs_mask, gamma
            ),
            [x, dr, di, sr, si],
        )

    @pytest.mark.parametrize("n", [8, 9])
    @pytest.mark.parametrize("gamma", [0.0, 0.5, 1.0])
    def test_fused_and_reference_gradients_agree(self, rng, n, gamma):
        x, dr, di, sr, si, m = make_mixed_inputs(rng, n=n)
        dfs_mask, sfs_mask = mask_pair(m, "overlapping", rng)
        tensors = (x, dr, di, sr, si)

        out = spectral_filter_mixed(x, dr, di, dfs_mask, sr, si, sfs_mask, gamma)
        seed_grad = np.ones_like(out.data)
        out.backward(seed_grad)
        fused = [t.grad.copy() if t.grad is not None else None for t in tensors]

        for t in tensors:
            t.zero_grad()
        ref = mixed_reference(x, dr, di, dfs_mask, sr, si, sfs_mask, gamma)
        ref.backward(seed_grad)
        for got, t in zip(fused, tensors):
            expected = t.grad if t.grad is not None else np.zeros_like(t.data)
            got = got if got is not None else np.zeros_like(t.data)
            assert np.allclose(got, expected, atol=1e-10)

    def test_masked_bins_receive_no_filter_gradient(self, rng):
        x, dr, di, sr, si, m = make_mixed_inputs(rng)
        dfs_mask, sfs_mask = mask_pair(m, "disjoint", rng)
        out = spectral_filter_mixed(x, dr, di, dfs_mask, sr, si, sfs_mask, 0.5)
        out.backward(np.ones_like(out.data))
        assert np.allclose(dr.grad[dfs_mask == 0], 0.0)
        assert np.allclose(di.grad[dfs_mask == 0], 0.0)
        assert np.allclose(sr.grad[sfs_mask == 0], 0.0)
        assert np.allclose(si.grad[sfs_mask == 0], 0.0)

    def test_dc_and_nyquist_imaginary_gradients_zero(self, rng):
        x, dr, di, sr, si, m = make_mixed_inputs(rng, n=8)
        out = spectral_filter_mixed(x, dr, di, np.ones(m), sr, si, np.ones(m), 0.5)
        out.backward(np.ones_like(out.data))
        for imag in (di, si):
            assert np.allclose(imag.grad[0], 0.0)
            assert np.allclose(imag.grad[-1], 0.0)  # Nyquist for even N


class TestDftMatrices:
    def test_roundtrip(self, rng):
        n = 10
        cos_m, sin_m, icos, isin = dft_matrices(n)
        x = rng.normal(size=n)
        xr, xi = cos_m @ x, sin_m @ x
        back = icos @ xr + isin @ xi
        assert np.allclose(back, x, atol=1e-12)

    def test_matches_numpy_rfft(self, rng):
        n = 12
        cos_m, sin_m, _, _ = dft_matrices(n)
        x = rng.normal(size=n)
        spec = np.fft.rfft(x)
        assert np.allclose(cos_m @ x, spec.real, atol=1e-12)
        assert np.allclose(sin_m @ x, spec.imag, atol=1e-12)
