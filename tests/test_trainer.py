"""Tests for the training loop, early stopping, and checkpoint restore."""

import numpy as np
import pytest

from repro.core import Slime4Rec, SlimeConfig
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.train import TrainConfig, Trainer


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(num_users=60, num_items=40, seed=8)
    return SequenceDataset(generate_interactions(cfg), max_len=10)


def make_model(dataset, **overrides):
    defaults = dict(
        num_items=dataset.num_items, max_len=dataset.max_len,
        hidden_dim=16, num_layers=2, cl_weight=0.1, seed=0,
    )
    defaults.update(overrides)
    return Slime4Rec(SlimeConfig(**defaults))


class TestTrainer:
    def test_loss_decreases_over_epochs(self, dataset):
        model = make_model(dataset)
        trainer = Trainer(model, dataset, TrainConfig(epochs=5, batch_size=64, patience=0))
        history = trainer.fit()
        assert history.losses[-1] < history.losses[0]

    def test_history_records_validation(self, dataset):
        model = make_model(dataset)
        trainer = Trainer(model, dataset, TrainConfig(epochs=3, batch_size=64, patience=0))
        history = trainer.fit()
        assert len(history.valid_metrics) == 3
        assert "NDCG@10" in history.valid_metrics[0]

    def test_best_checkpoint_restored(self, dataset):
        model = make_model(dataset)
        trainer = Trainer(model, dataset, TrainConfig(epochs=4, batch_size=64, patience=0))
        history = trainer.fit()
        # After fit the model must reproduce the best validation metric.
        result = trainer.evaluator.evaluate(model, split="valid")
        assert np.isclose(result[trainer.config.monitor], history.best_value, atol=1e-12)

    def test_early_stopping_halts(self, dataset):
        model = make_model(dataset)
        config = TrainConfig(epochs=50, batch_size=64, patience=1, lr=0.0)
        trainer = Trainer(model, dataset, config)
        history = trainer.fit()
        # lr=0 -> no improvement after epoch 1 -> stops at patience.
        assert len(history.losses) <= 3

    def test_padding_embedding_stays_zero(self, dataset):
        model = make_model(dataset)
        trainer = Trainer(model, dataset, TrainConfig(epochs=2, batch_size=64, patience=0))
        trainer.fit()
        assert np.allclose(model.item_embedding.weight.data[0], 0.0)

    def test_same_target_sampling_inferred_from_cl_weight(self, dataset):
        cl_model = make_model(dataset, cl_weight=0.5)
        assert Trainer(cl_model, dataset).iterator.with_same_target
        plain = make_model(dataset, cl_weight=0.0)
        assert not Trainer(plain, dataset).iterator.with_same_target

    def test_test_split_evaluation(self, dataset):
        model = make_model(dataset)
        trainer = Trainer(model, dataset, TrainConfig(epochs=1, batch_size=64, patience=0))
        trainer.fit()
        result = trainer.test()
        assert set(result.metrics) == {"HR@5", "HR@10", "NDCG@5", "NDCG@10"}

    def test_deterministic_given_seed(self, dataset):
        results = []
        for _ in range(2):
            model = make_model(dataset, seed=7)
            trainer = Trainer(model, dataset, TrainConfig(epochs=2, batch_size=64, patience=0, seed=3))
            trainer.fit()
            results.append(trainer.test().metrics)
        assert results[0] == results[1]

    def test_history_summary_format(self, dataset):
        model = make_model(dataset)
        trainer = Trainer(model, dataset, TrainConfig(epochs=1, batch_size=64, patience=0))
        history = trainer.fit()
        assert "best_epoch" in history.summary()
