"""Tests for the grid-search tuner."""

import numpy as np
import pytest

from repro.core import Slime4Rec, SlimeConfig
from repro.data.dataset import SequenceDataset
from repro.data.synthetic import SyntheticConfig, generate_interactions
from repro.train import TrainConfig
from repro.train.tuning import grid_search


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(num_users=50, num_items=40, seed=9)
    return SequenceDataset(generate_interactions(cfg), max_len=8)


def factory(dataset):
    def build(**params):
        return Slime4Rec(
            SlimeConfig(
                num_items=dataset.num_items, max_len=dataset.max_len,
                hidden_dim=16, cl_weight=0.0, seed=0, **params,
            )
        )

    return build


class TestGridSearch:
    def test_explores_full_product(self, dataset):
        result = grid_search(
            factory(dataset),
            dataset,
            {"alpha": [0.3, 0.6], "num_layers": [1, 2]},
            TrainConfig(epochs=1, batch_size=64, patience=0),
        )
        assert len(result.trials) == 4
        combos = {(t["params"]["alpha"], t["params"]["num_layers"]) for t in result.trials}
        assert combos == {(0.3, 1), (0.3, 2), (0.6, 1), (0.6, 2)}

    def test_trials_sorted_by_score(self, dataset):
        result = grid_search(
            factory(dataset),
            dataset,
            {"alpha": [0.2, 0.5, 0.8]},
            TrainConfig(epochs=1, batch_size=64, patience=0),
        )
        scores = [t["score"] for t in result.trials]
        assert scores == sorted(scores, reverse=True)
        assert result.best["score"] == scores[0]

    def test_best_has_test_metrics(self, dataset):
        result = grid_search(
            factory(dataset),
            dataset,
            {"alpha": [0.4]},
            TrainConfig(epochs=1, batch_size=64, patience=0),
        )
        assert "HR@5" in result.best["test_metrics"]

    def test_empty_grid_rejected(self, dataset):
        with pytest.raises(ValueError):
            grid_search(factory(dataset), dataset, {})

    def test_summary_lists_top_trials(self, dataset):
        result = grid_search(
            factory(dataset),
            dataset,
            {"alpha": [0.3, 0.7]},
            TrainConfig(epochs=1, batch_size=64, patience=0),
        )
        text = result.summary()
        assert "2 trials" in text and "alpha=" in text

    def test_monitor_override_propagates(self, dataset):
        result = grid_search(
            factory(dataset),
            dataset,
            {"alpha": [0.4]},
            TrainConfig(epochs=1, batch_size=64, patience=0),
            monitor="HR@5",
        )
        assert result.monitor == "HR@5"

    def test_best_raises_when_empty(self):
        from repro.train.tuning import GridSearchResult

        with pytest.raises(ValueError):
            GridSearchResult(monitor="HR@5").best
