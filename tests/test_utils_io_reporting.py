"""Tests for checkpoint I/O and report formatting."""

import numpy as np
import pytest

from repro.core import Slime4Rec, SlimeConfig
from repro.nn import Linear, Module, Parameter
from repro.utils import (
    format_metric_table,
    format_run_header,
    load_checkpoint,
    load_results,
    save_checkpoint,
    save_results,
)


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.layer = Linear(2, 3, rng=np.random.default_rng(0))


class TestCheckpointIO:
    def test_round_trip(self, tmp_path):
        model = TinyModel()
        path = save_checkpoint(model, tmp_path / "ckpt", metadata={"epoch": 3})
        fresh = TinyModel()
        fresh.layer.weight.data += 1.0
        loaded = load_checkpoint(path, model=fresh)
        assert np.allclose(fresh.layer.weight.data, model.layer.weight.data)
        assert loaded["metadata"]["epoch"] == 3
        assert loaded["metadata"]["model_class"] == "TinyModel"

    def test_suffix_added(self, tmp_path):
        path = save_checkpoint(TinyModel(), tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_load_without_model_returns_state(self, tmp_path):
        model = TinyModel()
        path = save_checkpoint(model, tmp_path / "ckpt")
        loaded = load_checkpoint(path)
        assert "layer.weight" in loaded["state"]

    def test_mismatched_model_raises(self, tmp_path):
        path = save_checkpoint(TinyModel(), tmp_path / "ckpt")

        class Other(Module):
            def __init__(self):
                super().__init__()
                self.different = Parameter(np.zeros(3))

        with pytest.raises(KeyError):
            load_checkpoint(path, model=Other())

    def test_full_model_checkpoint(self, tmp_path):
        cfg = SlimeConfig(num_items=20, max_len=8, hidden_dim=16, seed=0)
        model = Slime4Rec(cfg)
        path = save_checkpoint(model, tmp_path / "slime", metadata={"alpha": cfg.alpha})
        clone = Slime4Rec(cfg)
        load_checkpoint(path, model=clone)
        ids = np.zeros((2, 8), dtype=np.int64)
        model.eval(), clone.eval()
        assert np.allclose(model.predict_scores(ids), clone.predict_scores(ids))


class TestResultsIO:
    def test_round_trip(self, tmp_path):
        results = {"beauty": {"HR@5": 0.5, "ranks": np.array([1, 2])}}
        path = save_results(results, tmp_path / "out.json")
        loaded = load_results(path)
        assert loaded["beauty"]["HR@5"] == 0.5
        assert loaded["beauty"]["ranks"] == [1, 2]

    def test_numpy_scalars_serialized(self, tmp_path):
        path = save_results({"x": np.float32(1.5)}, tmp_path / "o.json")
        assert load_results(path)["x"] == 1.5


class TestReporting:
    def test_table_contains_all_rows(self):
        rows = {"A": {"HR@5": 0.1}, "B": {"HR@5": 0.3}}
        table = format_metric_table(rows)
        assert "| A" in table and "| B" in table

    def test_best_value_bolded(self):
        rows = {"A": {"HR@5": 0.1}, "B": {"HR@5": 0.3}}
        table = format_metric_table(rows)
        assert "**0.3000**" in table
        assert "**0.1000**" not in table

    def test_missing_metric_dash(self):
        rows = {"A": {"HR@5": 0.1}, "B": {}}
        table = format_metric_table(rows, metrics=["HR@5"])
        assert "-" in table.splitlines()[-1]

    def test_empty_rows(self):
        assert format_metric_table({}) == "(empty)"

    def test_run_header(self):
        header = format_run_header("Table II", dataset="beauty", epochs=3)
        assert header == "=== Table II (dataset=beauty, epochs=3) ==="
