"""Path-equivalence tests for the shared per-step compute workspace.

Covers the three hot paths the workspace subsystem rewired:

- fused Q/K/V attention vs. three separate projections (forward and
  backward, both dtypes, two geometries),
- shared-workspace FFT products vs. per-call allocation in the spectral
  ops (repeated/interleaved calls must not corrupt values or grads),
- the fast dropout-mask path (keep rate in expectation, scaling,
  backward consistency) and the bitwise fidelity of the default path.

Plus the workspace primitives themselves (scratch reuse, derived-
constant caching, ParamCache invalidation).
"""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.spectral import spectral_filter, spectral_filter_mixed
from repro.autograd.tensor import Tensor, bump_parameter_version
from repro.nn import MultiHeadSelfAttention
from repro.nn.workspace import (
    ParamCache,
    fast_dropout_masks,
    fast_dropout_masks_enabled,
    get_workspace,
    reset_workspace,
    set_fast_dropout_masks,
)

DTYPES = [np.float32, np.float64]
TOL = {np.float32: 1e-4, np.float64: 1e-10}

# Two step geometries: (batch, seq_len, dim, heads)
GEOMETRIES = [(3, 6, 8, 2), (2, 10, 12, 3)]


# ----------------------------------------------------------------------
# Workspace primitives
# ----------------------------------------------------------------------

class TestStepWorkspace:
    def test_scratch_reuses_buffer_per_key(self):
        ws = reset_workspace()
        a = ws.scratch("t", (4, 5), np.float32)
        b = ws.scratch("t", (4, 5), np.float32)
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_scratch_distinguishes_shape_dtype_tag(self):
        ws = reset_workspace()
        a = ws.scratch("t", (4, 5), np.float32)
        assert ws.scratch("t", (4, 5), np.float64) is not a
        assert ws.scratch("t", (5, 4), np.float32) is not a
        assert ws.scratch("u", (4, 5), np.float32) is not a

    def test_cached_builds_once(self):
        ws = reset_workspace()
        calls = []
        build = lambda: calls.append(1) or np.arange(3)
        first = ws.cached(("k", 3), build)
        second = ws.cached(("k", 3), build)
        assert first is second and len(calls) == 1

    def test_clear_drops_buffers(self):
        ws = reset_workspace()
        ws.scratch("t", (8,), np.float64)
        assert ws.nbytes() == 64
        ws.clear()
        assert ws.nbytes() == 0

    def test_param_cache_rebuilds_on_version_bump(self):
        cache = ParamCache()
        payload = np.ones(3)
        calls = []
        build = lambda: calls.append(1) or payload * 2
        cache.get((payload,), build)
        cache.get((payload,), build)
        assert len(calls) == 1
        bump_parameter_version()
        cache.get((payload,), build)
        assert len(calls) == 2

    def test_param_cache_rebuilds_on_payload_identity_change(self):
        cache = ParamCache()
        calls = []
        build = lambda: calls.append(1)
        cache.get((np.ones(3),), build)  # payload freed afterwards
        cache.get((np.ones(3),), build)  # new array, same values
        assert len(calls) == 2

    def test_param_cache_extra_key(self):
        cache = ParamCache()
        payload = np.ones(3)
        calls = []
        build = lambda: calls.append(1)
        cache.get((payload,), build, extra=0.5)
        cache.get((payload,), build, extra=0.7)
        assert len(calls) == 2

    def test_param_cache_invalidate(self):
        cache = ParamCache()
        payload = np.ones(3)
        calls = []
        build = lambda: calls.append(1)
        cache.get((payload,), build)
        cache.invalidate()
        cache.get((payload,), build)
        assert len(calls) == 2


# ----------------------------------------------------------------------
# Fused QKV attention vs. three separate projections
# ----------------------------------------------------------------------

def _attention_pair(dim, heads, dtype, causal=True):
    fused = MultiHeadSelfAttention(
        dim, heads, dropout=0.0, causal=causal, rng=np.random.default_rng(0), dtype=dtype
    )
    unfused = MultiHeadSelfAttention(
        dim, heads, dropout=0.0, causal=causal, rng=np.random.default_rng(0),
        dtype=dtype, fused=False,
    )
    return fused, unfused


class TestFusedAttentionEquivalence:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    @pytest.mark.parametrize("padded", [False, True])
    def test_forward_backward_match(self, dtype, geometry, padded):
        batch, length, dim, heads = geometry
        fused, unfused = _attention_pair(dim, heads, dtype)
        rng = np.random.default_rng(42)
        x = rng.standard_normal((batch, length, dim)).astype(dtype)
        pad = None
        if padded:
            pad = np.zeros((batch, length), dtype=bool)
            pad[0, :2] = True
        x1 = Tensor(x, requires_grad=True)
        x2 = Tensor(x.copy(), requires_grad=True)
        out1 = fused(x1, key_padding_mask=pad)
        out2 = unfused(x2, key_padding_mask=pad)
        tol = TOL[dtype]
        np.testing.assert_allclose(out1.data, out2.data, atol=tol, rtol=tol)

        grad = rng.standard_normal(out1.shape).astype(dtype)
        out1.backward(grad)
        out2.backward(grad)
        np.testing.assert_allclose(x1.grad, x2.grad, atol=tol, rtol=tol)
        for (name, p1), (_, p2) in zip(
            fused.named_parameters(), unfused.named_parameters()
        ):
            assert p1.grad is not None, f"{name} got no grad on the fused path"
            np.testing.assert_allclose(
                p1.grad, p2.grad, atol=tol, rtol=tol, err_msg=name
            )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_bidirectional_match(self, dtype):
        batch, length, dim, heads = GEOMETRIES[0]
        fused, unfused = _attention_pair(dim, heads, dtype, causal=False)
        x = np.random.default_rng(7).standard_normal((batch, length, dim)).astype(dtype)
        x1, x2 = Tensor(x, requires_grad=True), Tensor(x.copy(), requires_grad=True)
        out1, out2 = fused(x1), unfused(x2)
        tol = TOL[dtype]
        np.testing.assert_allclose(out1.data, out2.data, atol=tol, rtol=tol)
        out1.sum().backward()
        out2.sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, atol=tol, rtol=tol)

    def test_same_dropout_masks_per_seed(self):
        """Both paths draw the same attention-dropout stream per seed."""
        batch, length, dim, heads = GEOMETRIES[0]
        x = np.random.default_rng(3).standard_normal((batch, length, dim))
        outs = []
        for fused in (True, False):
            attn = MultiHeadSelfAttention(
                dim, heads, dropout=0.4, causal=True,
                rng=np.random.default_rng(0), dtype=np.float64, fused=fused,
            )
            outs.append(attn(Tensor(x)).data)
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-10)

    def test_qkv_cache_rebuilds_after_weight_update(self):
        batch, length, dim, heads = GEOMETRIES[0]
        attn, _ = _attention_pair(dim, heads, np.float64)
        x = Tensor(np.random.default_rng(1).standard_normal((batch, length, dim)))
        before = attn(x).data.copy()
        attn.query.weight.data += 1.0  # manual in-place edit
        attn.invalidate_qkv_cache()
        after = attn(x).data
        assert not np.allclose(before, after)

    def test_double_backward_over_shared_graph(self):
        """Two backward passes over one graph accumulate like unfused."""
        batch, length, dim, heads = GEOMETRIES[0]
        fused, unfused = _attention_pair(dim, heads, np.float64)
        x = np.random.default_rng(5).standard_normal((batch, length, dim))
        grads = []
        for attn in (fused, unfused):
            xt = Tensor(x.copy(), requires_grad=True)
            out = attn(xt)
            out.sum().backward()
            out.sum().backward()
            grads.append(xt.grad.copy())
        np.testing.assert_allclose(grads[0], grads[1], atol=1e-10)


# ----------------------------------------------------------------------
# Shared-workspace FFT vs. per-call behaviour
# ----------------------------------------------------------------------

def _mixed_inputs(rng, n, d, dtype):
    m = n // 2 + 1
    x = Tensor(rng.standard_normal((2, n, d)).astype(dtype), requires_grad=True)
    params = [
        Tensor(rng.standard_normal((m, d)).astype(dtype) * 0.1, requires_grad=True)
        for _ in range(4)
    ]
    dfs_mask = (np.arange(m) < m // 2 + 1).astype(float)
    sfs_mask = (np.arange(m) >= m // 2 - 1).astype(float)
    return x, params, dfs_mask, sfs_mask


class TestSpectralWorkspaceReuse:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("n,d", [(8, 4), (12, 6)])
    def test_repeated_calls_reuse_scratch_and_match_composition(self, dtype, n, d):
        """Scratch reuse across calls must not change values or grads."""
        rng = np.random.default_rng(0)
        ws = reset_workspace()
        results = []
        for trial in range(2):  # second trial runs entirely on reused buffers
            x, p, dm, sm = _mixed_inputs(np.random.default_rng(3), n, d, dtype)
            fused = spectral_filter_mixed(x, p[0], p[1], dm, p[2], p[3], sm, 0.3)
            fused.sum().backward()
            results.append(
                (fused.data.copy(), x.grad.copy(), [q.grad.copy() for q in p])
            )
        for a, b in zip(results[0], results[1]):
            if isinstance(a, list):
                for ga, gb in zip(a, b):
                    np.testing.assert_array_equal(ga, gb)
            else:
                np.testing.assert_array_equal(a, b)
        assert ws.hits > 0, "spectral ops did not reuse workspace scratch"

        # Cross-check the reused-buffer result against the two-branch
        # composition of the plain op (the defining identity).
        x, p, dm, sm = _mixed_inputs(np.random.default_rng(3), n, d, dtype)
        a = spectral_filter(x, p[0], p[1], dm)
        b = spectral_filter(x, p[2], p[3], sm)
        composed = 0.7 * a.data + 0.3 * b.data
        tol = TOL[dtype]
        np.testing.assert_allclose(results[1][0], composed, atol=tol, rtol=tol)

    def test_interleaved_geometries_do_not_corrupt(self):
        """Alternating two geometries exercises two scratch entries."""
        outs = {}
        for trial in range(2):
            for n, d in [(8, 4), (12, 6)]:
                x, p, dm, sm = _mixed_inputs(np.random.default_rng(n + d), n, d, np.float64)
                out = spectral_filter_mixed(x, p[0], p[1], dm, p[2], p[3], sm, 0.5)
                out.sum().backward()
                key = (n, d, trial)
                outs[key] = (out.data.copy(), x.grad.copy())
        for n, d in [(8, 4), (12, 6)]:
            np.testing.assert_array_equal(outs[(n, d, 0)][0], outs[(n, d, 1)][0])
            np.testing.assert_array_equal(outs[(n, d, 0)][1], outs[(n, d, 1)][1])

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_plain_spectral_filter_backward_unchanged(self, dtype):
        """The single-branch op still matches its autograd reference."""
        from repro.autograd.spectral import spectral_filter_reference

        rng = np.random.default_rng(1)
        n, d = 8, 3
        m = n // 2 + 1
        x = rng.standard_normal((2, n, d)).astype(dtype)
        wr = (rng.standard_normal((m, d)) * 0.1).astype(dtype)
        wi = (rng.standard_normal((m, d)) * 0.1).astype(dtype)
        mask = np.ones(m)
        t1 = [Tensor(v.copy(), requires_grad=True) for v in (x, wr, wi)]
        t2 = [Tensor(v.copy(), requires_grad=True) for v in (x, wr, wi)]
        out1 = spectral_filter(*t1, mask)
        out2 = spectral_filter_reference(*t2, mask)
        tol = TOL[dtype]
        np.testing.assert_allclose(out1.data, out2.data, atol=tol, rtol=tol)
        out1.sum().backward()
        out2.sum().backward()
        for a, b in zip(t1, t2):
            np.testing.assert_allclose(a.grad, b.grad, atol=tol, rtol=tol)


# ----------------------------------------------------------------------
# Dropout: bitwise default, fast path in expectation
# ----------------------------------------------------------------------

class TestDropoutPaths:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("shape", [(4, 8, 16), (2000,)])
    def test_default_path_bitwise_faithful(self, dtype, shape):
        """Seed-compatible mode reproduces the historical formula exactly."""
        p = 0.3
        keep = 1.0 - p
        a = Tensor(
            np.random.default_rng(1).standard_normal(shape).astype(dtype),
            requires_grad=True,
        )
        out = F.dropout(a, p, training=True, rng=np.random.default_rng(9))
        ref_mask = (np.random.default_rng(9).random(shape) < keep).astype(dtype) / keep
        np.testing.assert_array_equal(out.data, a.data * ref_mask)
        grad = np.random.default_rng(2).standard_normal(shape).astype(dtype)
        out.backward(grad)
        np.testing.assert_array_equal(a.grad, grad * ref_mask)

    def test_flag_default_is_seed_compatible(self):
        assert not fast_dropout_masks_enabled()

    def test_flag_context_manager_restores(self):
        with fast_dropout_masks():
            assert fast_dropout_masks_enabled()
            with fast_dropout_masks(False):
                assert not fast_dropout_masks_enabled()
            assert fast_dropout_masks_enabled()
        assert not fast_dropout_masks_enabled()

    def test_set_returns_previous(self):
        assert set_fast_dropout_masks(True) is False
        assert set_fast_dropout_masks(False) is True

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("p", [0.25, 0.5])
    def test_fast_path_keep_rate_and_scaling(self, dtype, p):
        keep = 1.0 - p
        a = Tensor(np.ones((400, 400), dtype=dtype))
        with fast_dropout_masks():
            out = F.dropout(a, p, training=True, rng=np.random.default_rng(0))
        assert out.dtype == np.dtype(dtype)
        kept = out.data != 0
        # 160k Bernoulli draws: observed rate within ~4 sigma of keep.
        sigma = np.sqrt(keep * (1 - keep) / a.size)
        assert abs(kept.mean() - keep) < 4 * sigma + 1e-4
        expected = dtype(1.0) / dtype(keep)
        np.testing.assert_allclose(out.data[kept], expected, rtol=1e-6)

    def test_fast_path_backward_uses_forward_mask(self):
        a = Tensor(np.ones((64, 64)), requires_grad=True)
        with fast_dropout_masks():
            out = F.dropout(a, 0.5, training=True, rng=np.random.default_rng(0))
        out.backward(np.ones(a.shape))
        np.testing.assert_array_equal((a.grad != 0), (out.data != 0))

    def test_explicit_fast_argument_overrides_flag(self):
        a = Tensor(np.ones((8, 8)))
        out_slow = F.dropout(a, 0.5, training=True, rng=np.random.default_rng(0), fast=False)
        ref_mask = (np.random.default_rng(0).random((8, 8)) < 0.5)
        np.testing.assert_array_equal(out_slow.data != 0, ref_mask)

    def test_eval_mode_still_identity(self):
        a = Tensor(np.ones((4, 4)))
        with fast_dropout_masks():
            assert F.dropout(a, 0.5, training=False, rng=np.random.default_rng(0)) is a


# ----------------------------------------------------------------------
# Train-step equivalence: default path matches the seed formulation
# ----------------------------------------------------------------------

class TestGetitemBasicIndexBackward:
    def test_slice_index_matches_scatter(self):
        a = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = F.getitem(a, (slice(None), -1))
        out.sum().backward()
        expected = np.zeros((2, 3, 4))
        expected[:, -1] = 1.0
        np.testing.assert_array_equal(a.grad, expected)

    def test_fancy_index_still_accumulates_duplicates(self):
        a = Tensor(np.zeros((5, 2)), requires_grad=True)
        idx = np.array([1, 1, 3])
        out = F.getitem(a, idx)
        out.sum().backward()
        assert a.grad[1, 0] == 2.0 and a.grad[3, 0] == 1.0
